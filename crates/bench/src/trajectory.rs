//! The bench-trajectory harness: machine-readable performance snapshots.
//!
//! `experiments report` runs the hot-path workloads — full PNNQ, batched
//! PNNQ, index construction and (since PR 5) a mixed read/write `serve`
//! workload on the concurrent [`Db`] facade — on the PV-index and writes
//! the medians to a `BENCH_pr<N>.json` file at the repository root. Each
//! perf PR records its post-change numbers under its own file, so later
//! sessions can read the trajectory instead of re-deriving baselines; CI
//! runs the mode on the tiny preset so the harness itself cannot bit-rot.
//!
//! Allocation accounting: when the running binary registered
//! [`crate::alloc_counter::CountingAllocator`] (the `experiments` binary
//! does), the report also measures steady-state allocations per query for a
//! sequential `query_batch_into` — the number the zero-allocation contract
//! says must be `0`.
//!
//! The `serve` workload measures what the PR-5 redesign is for: read QPS
//! while a single writer publishes copy-on-write snapshots at 0, 1, 10 —
//! and, since the PR-6 page-level COW commits made single-object writes
//! O(k·log n) instead of O(index), 100 and 1000 — writes/sec. Readers pin
//! snapshots through pooled [`Session`]s and never block on the writer's
//! forking work, so read throughput should stay in the same band across
//! all rates; each point also records the writer's commit-latency p50/p99.
//! A separate `commit` workload times a single-object `Db` commit against
//! the legacy write path (snapshot-codec fork + eager neighbour refresh,
//! implementation) to pin down the speedup the COW fork buys.

use crate::alloc_counter;
use crate::Ctx;
use pv_core::baseline::RTreeBaseline;
use pv_core::db::{Db, PersistentEngine, Session};
use pv_core::durable::{DurableDb, DurableOptions, SyncPolicy};
use pv_core::snapshot::{pv_index_from_bytes, pv_index_to_bytes};
use pv_core::{
    BatchSlots, ProbNnEngine, PvIndex, PvParams, QueryOutcome, QueryScratch, QuerySpec,
    WritableEngine,
};
use pv_geom::{HyperRect, Point};
use pv_uncertain::UncertainObject;
use pv_workload::queries;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The PR number this snapshot file belongs to.
pub const TRAJECTORY_PR: u32 = 10;

/// One measured per-query workload: a name plus its median cost. (The build
/// workload reports whole-build wall time separately — its unit is
/// incomparable with a per-query median.)
#[derive(Debug, Clone)]
pub struct WorkloadMedian {
    /// Workload identifier (`"pnnq_full"`, `"query_batch"`).
    pub name: &'static str,
    /// Median nanoseconds per query.
    pub median_ns_per_op: u64,
    /// Operations measured per round.
    pub ops: usize,
    /// Measurement rounds the median was taken over.
    pub rounds: usize,
}

/// One mixed read/write measurement point of the `serve` workload.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Writer publication rate the point was measured at (writes/sec).
    pub writes_per_sec: u32,
    /// Read throughput across all reader threads (queries/sec).
    pub read_qps: f64,
    /// Snapshot publications the writer actually committed.
    pub writes_applied: u64,
    /// Median commit latency (fork + update + publish), nanoseconds.
    pub write_p50_ns: u64,
    /// 99th-percentile commit latency, nanoseconds.
    pub write_p99_ns: u64,
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Nearest-rank percentile (`p` in 0..=100); 0 for an empty sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs readers (pooled sessions over `db`) for `duration` while one writer
/// publishes insert/remove pairs at `writes_per_sec`; returns the measured
/// point. Readers never block on the writer — every query runs against a
/// pinned snapshot.
fn serve_point(
    db: &Db<PvIndex>,
    qs: &[Point],
    writes_per_sec: u32,
    duration: Duration,
    reader_threads: usize,
) -> ServePoint {
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let spec = QuerySpec::new().with_top_k(5);
    let domain: HyperRect = db.reader().domain().clone();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..reader_threads {
            scope.spawn(|| {
                let mut session: Session<'_, PvIndex> = db.session();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    session
                        .query(&qs[i % qs.len()], &spec)
                        .expect("serve query");
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        let writer = (writes_per_sec > 0).then(|| {
            scope.spawn(|| {
                let interval = Duration::from_secs_f64(1.0 / writes_per_sec as f64);
                // A small object at the domain centre, fresh id per write.
                let c = domain.center();
                let lo: Vec<f64> = c.coords().iter().map(|x| x - 0.5).collect();
                let hi: Vec<f64> = c.coords().iter().map(|x| x + 0.5).collect();
                let region = HyperRect::new(lo, hi);
                let mut next_id = 1_000_000_000u64;
                let mut live: Option<u64> = None;
                let mut latencies = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // Alternate insert/remove so the database size stays
                    // put while every tick publishes a new snapshot.
                    let t = Instant::now();
                    match live.take() {
                        Some(id) => {
                            db.remove(id).expect("serve remove");
                        }
                        None => {
                            let o = UncertainObject::uniform(next_id, region.clone(), 16);
                            db.insert(o).expect("serve insert");
                            live = Some(next_id);
                            next_id += 1;
                        }
                    }
                    latencies.push(t.elapsed().as_nanos() as u64);
                    writes.fetch_add(1, Ordering::Relaxed);
                    // Sleep in short slices so the stop flag is honoured
                    // even at the slow rates.
                    let wake = Instant::now() + interval;
                    loop {
                        let now = Instant::now();
                        if now >= wake || stop.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep((wake - now).min(Duration::from_millis(5)));
                    }
                }
                // Leave the database exactly as found, so consecutive
                // serve points (and their fresh-id counters) are
                // independent.
                if let Some(id) = live {
                    db.remove(id).expect("serve cleanup");
                }
                latencies
            })
        });
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        // Sample the window at the instant the flag flips: scope join still
        // waits for the writer's in-flight commit, and counting that tail
        // against only the nonzero-write points would fake a read slowdown
        // the readers never experienced.
        let elapsed = t0.elapsed().as_secs_f64();
        let mut latencies = writer
            .map(|h| h.join().expect("serve writer panicked"))
            .unwrap_or_default();
        latencies.sort_unstable();
        ServePoint {
            writes_per_sec,
            read_qps: reads.load(Ordering::Relaxed) as f64 / elapsed.max(1e-9),
            writes_applied: writes.load(Ordering::Relaxed),
            write_p50_ns: percentile(&latencies, 50.0),
            write_p99_ns: percentile(&latencies, 99.0),
        }
    })
}

/// Times a single-object `Db::commit` (fork + insert/remove + publish) and
/// the legacy write path it replaced — a snapshot-codec round trip plus an
/// eager build-grade refresh of every affected neighbour, which is
/// what `WritableEngine::fork` did before the PR-6 page-level COW pager.
/// Returns `(commit_median_ns, legacy_write_median_ns)`.
fn commit_workload(index: &PvIndex, domain: &HyperRect, rounds: usize) -> (u64, u64) {
    let c = domain.center();
    let lo: Vec<f64> = c.coords().iter().map(|x| x - 0.5).collect();
    let hi: Vec<f64> = c.coords().iter().map(|x| x + 0.5).collect();
    let region = HyperRect::new(lo, hi);

    let db = Db::new(index.fork());
    let mut commit_ns = Vec::with_capacity(rounds * 2);
    for k in 0..rounds as u64 {
        let o = UncertainObject::uniform(2_000_000_000 + k, region.clone(), 16);
        let t = Instant::now();
        db.insert(o).expect("commit bench insert");
        commit_ns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        db.remove(2_000_000_000 + k).expect("commit bench remove");
        commit_ns.push(t.elapsed().as_nanos() as u64);
    }

    // The pre-COW write path, replayed faithfully: fork was a snapshot-codec
    // round trip of the whole index, and every commit eagerly re-tightened
    // each affected neighbour with the build-grade candidate set (the policy
    // `update_cset = cset, update_budget = MAX` reproduces exactly).
    let mut legacy_ns = Vec::with_capacity(rounds.min(3) * 2);
    for k in 0..rounds.min(3) as u64 {
        let t = Instant::now();
        let mut forked = pv_index_from_bytes(&pv_index_to_bytes(index)).expect("legacy fork");
        forked.set_update_policy(forked.params().cset, usize::MAX);
        forked
            .insert(UncertainObject::uniform(
                2_100_000_000 + k,
                region.clone(),
                16,
            ))
            .expect("legacy bench insert");
        legacy_ns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        let mut forked = pv_index_from_bytes(&pv_index_to_bytes(&forked)).expect("legacy fork");
        forked.set_update_policy(forked.params().cset, usize::MAX);
        forked
            .remove(2_100_000_000 + k)
            .expect("legacy bench remove");
        legacy_ns.push(t.elapsed().as_nanos() as u64);
    }
    (median(commit_ns), median(legacy_ns))
}

/// One engine's durable-commit measurement: fsynced write-ahead commit
/// latency plus the cost of recovering the directory by WAL replay.
#[derive(Debug, Clone)]
pub struct DurablePoint {
    /// Engine identifier (`"pv_index"`, `"rtree_baseline"`).
    pub engine: &'static str,
    /// Median fsynced single-object commit latency, nanoseconds.
    pub commit_p50_ns: u64,
    /// 99th-percentile fsynced commit latency, nanoseconds.
    pub commit_p99_ns: u64,
    /// Commits measured.
    pub commits: usize,
    /// Wall time of `DurableDb::open` (snapshot load + full WAL replay).
    pub recovery_ns: u64,
    /// Commits the recovery replayed from the log.
    pub replayed_commits: u64,
}

/// Times `rounds` insert/remove pairs through a [`DurableDb`] with
/// per-commit fsync (the durability PR's headline cost: WAL append +
/// fsync on top of the COW publish), then crashes-by-drop and times the
/// recovery replay of the full log.
fn durable_workload<E: WritableEngine + PersistentEngine>(
    engine: E,
    name: &'static str,
    domain: &HyperRect,
    rounds: usize,
) -> DurablePoint {
    let dir = std::env::temp_dir().join(format!("pv_bench_durable_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // No compaction: the whole history stays in the log so the recovery
    // number below measures a 2×rounds-commit replay.
    let opts = DurableOptions {
        sync: SyncPolicy::EveryCommit,
        compact_after_commits: u64::MAX,
        compact_after_bytes: u64::MAX,
        ..DurableOptions::default()
    };
    let c = domain.center();
    let lo: Vec<f64> = c.coords().iter().map(|x| x - 0.5).collect();
    let hi: Vec<f64> = c.coords().iter().map(|x| x + 0.5).collect();
    let region = HyperRect::new(lo, hi);

    let db = DurableDb::create(&dir, engine, opts).expect("durable bench create");
    let mut commit_ns = Vec::with_capacity(rounds * 2);
    for k in 0..rounds as u64 {
        let o = UncertainObject::uniform(3_000_000_000 + k, region.clone(), 16);
        let t = Instant::now();
        let _ = db.insert(o).expect("durable bench insert");
        commit_ns.push(t.elapsed().as_nanos() as u64);
        let t = Instant::now();
        let _ = db.remove(3_000_000_000 + k).expect("durable bench remove");
        commit_ns.push(t.elapsed().as_nanos() as u64);
    }
    drop(db); // "crash": nothing beyond the fsynced WAL survives

    let t = Instant::now();
    let (_recovered, report) = DurableDb::<E>::open(&dir, opts).expect("durable bench recovery");
    let recovery_ns = t.elapsed().as_nanos() as u64;
    let _ = std::fs::remove_dir_all(&dir);

    commit_ns.sort_unstable();
    DurablePoint {
        engine: name,
        commit_p50_ns: percentile(&commit_ns, 50.0),
        commit_p99_ns: percentile(&commit_ns, 99.0),
        commits: commit_ns.len(),
        recovery_ns,
        replayed_commits: report.replayed_commits,
    }
}

/// Runs the trajectory workloads and writes `path` (JSON). Also prints a
/// short human-readable summary.
pub fn report(ctx: &Ctx, path: &str) {
    let n = ctx.preset.s_default();
    let dim = 3;
    let db = ctx.synthetic_db(n, dim, 60.0, 4242);
    let params = ctx.pv_params();

    // --- build workload (median over fresh builds; every build measured,
    // the last one kept as the query-workload index) ---
    let build_rounds = 3;
    let mut build_ns = Vec::with_capacity(build_rounds);
    let mut timed_build = || {
        let t = Instant::now();
        let idx = PvIndex::build(&db, params);
        build_ns.push(t.elapsed().as_nanos() as u64);
        idx
    };
    let mut index = timed_build();
    for _ in 1..build_rounds {
        index = timed_build();
    }
    let build_median_ns = median(build_ns);

    // --- build scaling (PR 8): work-stealing thread sweep + approximate-UBR
    // point, each a median over fresh builds. On a single-core runner the
    // thread sweep measures scheduler overhead (the medians should agree);
    // on real cores it measures the near-linear Phase-1 speedup.
    let scaling_rounds = 3;
    let scale_point = |p: PvParams| -> u64 {
        let mut ns = Vec::with_capacity(scaling_rounds);
        for _ in 0..scaling_rounds {
            let t = Instant::now();
            std::hint::black_box(PvIndex::build(&db, p));
            ns.push(t.elapsed().as_nanos() as u64);
        }
        median(ns)
    };
    let build_scaling: Vec<(usize, u64)> = [1usize, 2, 4]
        .into_iter()
        .map(|t| {
            (
                t,
                scale_point(PvParams {
                    build_threads: t,
                    ..params
                }),
            )
        })
        .collect();
    // ε in domain units (domain side 10_000, exact Δ = 1): 10% of a domain
    // side skips the bulk of SE's refinement passes while the UBRs stay
    // separable enough for the octree (past ~20% the loose rectangles
    // overlap everything and leaf chains blow up instead).
    let approx_epsilon = 1_000.0;
    let approx_median_ns = scale_point(
        PvParams {
            build_threads: 4,
            ..params
        }
        .approx_ubr(approx_epsilon),
    );

    // --- pnnq workload (median per-query latency, scratch reused) ---
    let qs = queries::uniform(&db.domain, ctx.preset.queries().max(32), 77);
    let spec = QuerySpec::new();
    let mut scratch = QueryScratch::default();
    let mut out = QueryOutcome::default();
    for q in &qs {
        index
            .execute_into(q, &spec, &mut scratch, &mut out)
            .expect("warm-up query"); // warm-up
    }
    let rounds = 5;
    let mut per_op = Vec::with_capacity(rounds * qs.len());
    for _ in 0..rounds {
        for q in &qs {
            let t = Instant::now();
            index
                .execute_into(q, &spec, &mut scratch, &mut out)
                .expect("pnnq query");
            per_op.push(t.elapsed().as_nanos() as u64);
        }
    }
    let pnnq = WorkloadMedian {
        name: "pnnq_full",
        median_ns_per_op: median(per_op),
        ops: qs.len(),
        rounds,
    };

    // --- batch workload (parallel query_batch_into, slots reused) ---
    let batch_spec = QuerySpec::new().with_top_k(5);
    let mut slots = BatchSlots::new();
    let warm = index
        .query_batch_into(&qs, &batch_spec, &mut slots)
        .expect("warm-up batch");
    let threads = warm.threads;
    let mut batch_per_op = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        index
            .query_batch_into(&qs, &batch_spec, &mut slots)
            .expect("batch");
        batch_per_op.push(t.elapsed().as_nanos() as u64 / qs.len() as u64);
    }
    let batch = WorkloadMedian {
        name: "query_batch",
        median_ns_per_op: median(batch_per_op),
        ops: qs.len(),
        rounds,
    };

    // --- steady-state allocations per query (sequential batch) ---
    let seq_spec = QuerySpec::new().with_top_k(5).with_batch_threads(1);
    index
        .query_batch_into(&qs, &seq_spec, &mut slots)
        .expect("alloc warm-up");
    index
        .query_batch_into(&qs, &seq_spec, &mut slots)
        .expect("alloc warm-up");
    let a0 = alloc_counter::allocations();
    index
        .query_batch_into(&qs, &seq_spec, &mut slots)
        .expect("alloc measurement");
    let allocs = alloc_counter::allocations() - a0;
    let allocs_per_query = allocs as f64 / qs.len() as f64;
    let alloc_counter_active = alloc_counter::is_registered();

    // --- commit workload (single-object COW commit vs legacy write path) ---
    let commit_rounds = 10;
    let (commit_median_ns, legacy_write_median_ns) =
        commit_workload(&index, &db.domain, commit_rounds);
    let commit_speedup = legacy_write_median_ns as f64 / (commit_median_ns as f64).max(1.0);

    // --- durable workload (PR 9): fsynced WAL commit latency and
    // WAL-replay recovery time, for the PV-index and — now that its fork
    // is a structural clone rather than an O(index) re-bulk-load — the
    // R-tree baseline engine too.
    let durable_rounds = 10;
    let durable = [
        durable_workload(index.fork(), "pv_index", &db.domain, durable_rounds),
        durable_workload(
            RTreeBaseline::build(&db, params.rtree_fanout, params.page_size),
            "rtree_baseline",
            &db.domain,
            durable_rounds,
        ),
    ];

    // --- serve workload (mixed read/write on the Db facade) ---
    let serve_db = Db::new(index);
    // The page-level COW fork made commits cheap enough that a 1-second
    // window holds hundreds of publications even at the 1000 writes/sec
    // point on a 1-core CI box.
    let serve_duration = Duration::from_millis(1_000);
    let reader_threads = 2;
    let serve: Vec<ServePoint> = [0u32, 1, 10, 100, 1_000]
        .iter()
        .map(|&w| serve_point(&serve_db, &qs, w, serve_duration, reader_threads))
        .collect();

    // --- lint workload (PR 10): wall time of the full interprocedural
    // pv-lint pass, so the sub-250ms budget is tracked across PRs like any
    // other performance number.
    let (lint_wall_ns, lint_files, lint_active, lint_waived) = lint_workload();

    let preset = format!("{:?}", ctx.preset).to_lowercase();
    let durable_json =
        durable
            .iter()
            .map(|p| {
                format!(
                "    \"{}\": {{ \"commit_p50_ns\": {}, \"commit_p99_ns\": {}, \"commits\": {}, \
                 \"recovery_ns\": {}, \"replayed_commits\": {} }}",
                p.engine, p.commit_p50_ns, p.commit_p99_ns, p.commits, p.recovery_ns,
                p.replayed_commits
            )
            })
            .collect::<Vec<_>>()
            .join(",\n");
    let serve_json = serve
        .iter()
        .map(|p| {
            format!(
                "    \"writes_per_sec_{}\": {{ \"read_qps\": {:.0}, \"writes_applied\": {}, \
                 \"write_p50_ns\": {}, \"write_p99_ns\": {} }}",
                p.writes_per_sec, p.read_qps, p.writes_applied, p.write_p50_ns, p.write_p99_ns
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"pr\": {pr},\n  \"preset\": \"{preset}\",\n  \"engine\": \"pv-index\",\n  \
         \"objects\": {n},\n  \"dim\": {dim},\n  \"samples_per_object\": {samples},\n  \
         \"batch_threads\": {threads},\n  \
         \"workloads\": {{\n{workloads}\n  }},\n  \
         \"commit\": {{\n    \"single_object_median_ns\": {commit_median_ns},\n    \
         \"legacy_write_median_ns\": {legacy_write_median_ns},\n    \
         \"speedup_vs_legacy_write\": {commit_speedup:.1},\n    \"rounds\": {commit_rounds}\n  }},\n  \
         \"durable\": {{\n    \"sync\": \"every_commit\",\n{durable_json}\n  }},\n  \
         \"serve\": {{\n    \"duration_ms\": {serve_ms},\n    \"reader_threads\": {reader_threads},\n{serve_json}\n  }},\n  \
         \"lint\": {{ \"wall_ns\": {lint_wall_ns}, \"files_scanned\": {lint_files}, \
         \"active\": {lint_active}, \"waived\": {lint_waived} }},\n  \
         \"allocs_per_query_steady_state\": {allocs_per_query},\n  \
         \"alloc_counter_active\": {alloc_counter_active}\n}}\n",
        pr = TRAJECTORY_PR,
        samples = ctx.preset.samples(),
        serve_ms = serve_duration.as_millis(),
        workloads = [&pnnq, &batch]
            .iter()
            .map(|w| {
                format!(
                    "    \"{}\": {{ \"median_ns_per_op\": {}, \"ops\": {}, \"rounds\": {} }}",
                    w.name, w.median_ns_per_op, w.ops, w.rounds
                )
            })
            .chain(std::iter::once(format!(
                // Whole-build wall time, deliberately NOT "per op": dividing
                // by the object count would invite cross-workload comparison
                // of incomparable units.
                "    \"build\": {{ \"median_ns\": {build_median_ns}, \"objects\": {n}, \"rounds\": {build_rounds},\n      \
                 \"scaling\": {{ {scaling_json}, \"approx_epsilon\": {approx_epsilon}, \
                 \"approx_threads_4_median_ns\": {approx_median_ns}, \"rounds\": {scaling_rounds} }} }}",
                scaling_json = build_scaling
                    .iter()
                    .map(|(t, ns)| format!("\"threads_{t}_median_ns\": {ns}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    }

    println!("\n== bench trajectory (PR {TRAJECTORY_PR}, preset {preset}) ==");
    for w in [&pnnq, &batch] {
        println!(
            "{:>12}: median {:>12} ns/op  ({} ops x {} rounds)",
            w.name, w.median_ns_per_op, w.ops, w.rounds
        );
    }
    println!(
        "{:>12}: median {:>12} ns/build ({n} objects x {build_rounds} rounds)",
        "build", build_median_ns
    );
    for (t, ns) in &build_scaling {
        println!(
            "{:>12}: median {:>12} ns/build at {t} thread(s)",
            "scaling", ns
        );
    }
    println!(
        "{:>12}: median {:>12} ns/build approx (eps {approx_epsilon}, 4 threads)",
        "scaling", approx_median_ns
    );
    println!(
        "{:>12}: median {:>12} ns/commit (legacy write path {legacy_write_median_ns} ns, {commit_speedup:.0}x)",
        "commit", commit_median_ns
    );
    for p in &durable {
        println!(
            "{:>12}: {} commit p50 {} ns p99 {} ns; recovery {} ns over {} replayed commits",
            "durable",
            p.engine,
            p.commit_p50_ns,
            p.commit_p99_ns,
            p.recovery_ns,
            p.replayed_commits
        );
    }
    for p in &serve {
        println!(
            "{:>12}: {:>8.0} read qps at {:>4} writes/sec ({} published, write p50 {} ns p99 {} ns)",
            "serve", p.read_qps, p.writes_per_sec, p.writes_applied, p.write_p50_ns, p.write_p99_ns
        );
    }
    println!(
        "{:>12}: {:.3} allocs/query (counter {})",
        "steady-state",
        allocs_per_query,
        if alloc_counter_active {
            "active"
        } else {
            "NOT registered — value meaningless"
        }
    );
    if lint_files > 0 {
        println!(
            "{:>12}: {:>12} ns wall ({lint_files} files, {lint_active} active, {lint_waived} waived)",
            "lint", lint_wall_ns
        );
    }
    println!("(json: {path})");
}

/// Wall time of the full interprocedural pv-lint pass, run from the nearest
/// `lint.toml` above the CWD. Returns `(wall_ns, files_scanned, active,
/// waived)` — all zeros when no checkout is in reach (e.g. an installed
/// binary), so `report` still works outside the repo.
fn lint_workload() -> (u64, usize, usize, usize) {
    let mut root = std::env::current_dir().unwrap_or_else(|_| ".".into());
    while !root.join("lint.toml").is_file() {
        if !root.pop() {
            return (0, 0, 0, 0);
        }
    }
    let t = Instant::now();
    match pv_lint::lint_root(&root) {
        Ok(r) => (
            t.elapsed().as_nanos() as u64,
            r.files_scanned,
            r.diagnostics.len(),
            r.waived.len(),
        ),
        Err(_) => (0, 0, 0, 0),
    }
}
