//! The bench-trajectory harness: machine-readable performance snapshots.
//!
//! `experiments report` runs the three hot-path workloads — full PNNQ,
//! batched PNNQ and index construction — on the PV-index and writes the
//! medians to a `BENCH_pr<N>.json` file at the repository root. Each perf PR
//! records its post-change numbers under its own file, so later sessions can
//! read the trajectory instead of re-deriving baselines; CI runs the mode on
//! the tiny preset so the harness itself cannot bit-rot.
//!
//! Allocation accounting: when the running binary registered
//! [`crate::alloc_counter::CountingAllocator`] (the `experiments` binary
//! does), the report also measures steady-state allocations per query for a
//! sequential `query_batch_into` — the number the zero-allocation contract
//! says must be `0`.

use crate::alloc_counter;
use crate::Ctx;
use pv_core::{BatchSlots, ProbNnEngine, PvIndex, QueryOutcome, QueryScratch, QuerySpec};
use pv_workload::queries;
use std::time::Instant;

/// The PR number this snapshot file belongs to.
pub const TRAJECTORY_PR: u32 = 4;

/// One measured per-query workload: a name plus its median cost. (The build
/// workload reports whole-build wall time separately — its unit is
/// incomparable with a per-query median.)
#[derive(Debug, Clone)]
pub struct WorkloadMedian {
    /// Workload identifier (`"pnnq_full"`, `"query_batch"`).
    pub name: &'static str,
    /// Median nanoseconds per query.
    pub median_ns_per_op: u64,
    /// Operations measured per round.
    pub ops: usize,
    /// Measurement rounds the median was taken over.
    pub rounds: usize,
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Runs the trajectory workloads and writes `path` (JSON). Also prints a
/// short human-readable summary.
pub fn report(ctx: &Ctx, path: &str) {
    let n = ctx.preset.s_default();
    let dim = 3;
    let db = ctx.synthetic_db(n, dim, 60.0, 4242);
    let params = ctx.pv_params();

    // --- build workload (median over fresh builds; every build measured,
    // the last one kept as the query-workload index) ---
    let build_rounds = 3;
    let mut build_ns = Vec::with_capacity(build_rounds);
    let mut timed_build = || {
        let t = Instant::now();
        let idx = PvIndex::build(&db, params);
        build_ns.push(t.elapsed().as_nanos() as u64);
        idx
    };
    let mut index = timed_build();
    for _ in 1..build_rounds {
        index = timed_build();
    }
    let build_median_ns = median(build_ns);

    // --- pnnq workload (median per-query latency, scratch reused) ---
    let qs = queries::uniform(&db.domain, ctx.preset.queries().max(32), 77);
    let spec = QuerySpec::new();
    let mut scratch = QueryScratch::default();
    let mut out = QueryOutcome::default();
    for q in &qs {
        index.execute_into(q, &spec, &mut scratch, &mut out); // warm-up
    }
    let rounds = 5;
    let mut per_op = Vec::with_capacity(rounds * qs.len());
    for _ in 0..rounds {
        for q in &qs {
            let t = Instant::now();
            index.execute_into(q, &spec, &mut scratch, &mut out);
            per_op.push(t.elapsed().as_nanos() as u64);
        }
    }
    let pnnq = WorkloadMedian {
        name: "pnnq_full",
        median_ns_per_op: median(per_op),
        ops: qs.len(),
        rounds,
    };

    // --- batch workload (parallel query_batch_into, slots reused) ---
    let batch_spec = QuerySpec::new().top_k(5);
    let mut slots = BatchSlots::new();
    let warm = index.query_batch_into(&qs, &batch_spec, &mut slots);
    let threads = warm.threads;
    let mut batch_per_op = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        index.query_batch_into(&qs, &batch_spec, &mut slots);
        batch_per_op.push(t.elapsed().as_nanos() as u64 / qs.len() as u64);
    }
    let batch = WorkloadMedian {
        name: "query_batch",
        median_ns_per_op: median(batch_per_op),
        ops: qs.len(),
        rounds,
    };

    // --- steady-state allocations per query (sequential batch) ---
    let seq_spec = QuerySpec::new().top_k(5).batch_threads(1);
    index.query_batch_into(&qs, &seq_spec, &mut slots);
    index.query_batch_into(&qs, &seq_spec, &mut slots);
    let a0 = alloc_counter::allocations();
    index.query_batch_into(&qs, &seq_spec, &mut slots);
    let allocs = alloc_counter::allocations() - a0;
    let allocs_per_query = allocs as f64 / qs.len() as f64;
    let alloc_counter_active = alloc_counter::is_registered();

    let preset = format!("{:?}", ctx.preset).to_lowercase();
    let json = format!(
        "{{\n  \"pr\": {pr},\n  \"preset\": \"{preset}\",\n  \"engine\": \"pv-index\",\n  \
         \"objects\": {n},\n  \"dim\": {dim},\n  \"samples_per_object\": {samples},\n  \
         \"batch_threads\": {threads},\n  \
         \"workloads\": {{\n{workloads}\n  }},\n  \
         \"allocs_per_query_steady_state\": {allocs_per_query},\n  \
         \"alloc_counter_active\": {alloc_counter_active}\n}}\n",
        pr = TRAJECTORY_PR,
        samples = ctx.preset.samples(),
        workloads = [&pnnq, &batch]
            .iter()
            .map(|w| {
                format!(
                    "    \"{}\": {{ \"median_ns_per_op\": {}, \"ops\": {}, \"rounds\": {} }}",
                    w.name, w.median_ns_per_op, w.ops, w.rounds
                )
            })
            .chain(std::iter::once(format!(
                // Whole-build wall time, deliberately NOT "per op": dividing
                // by the object count would invite cross-workload comparison
                // of incomparable units.
                "    \"build\": {{ \"median_ns\": {build_median_ns}, \"objects\": {n}, \"rounds\": {build_rounds} }}"
            )))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    }

    println!("\n== bench trajectory (PR {TRAJECTORY_PR}, preset {preset}) ==");
    for w in [&pnnq, &batch] {
        println!(
            "{:>12}: median {:>12} ns/op  ({} ops x {} rounds)",
            w.name, w.median_ns_per_op, w.ops, w.rounds
        );
    }
    println!(
        "{:>12}: median {:>12} ns/build ({n} objects x {build_rounds} rounds)",
        "build", build_median_ns
    );
    println!(
        "{:>12}: {:.3} allocs/query (counter {})",
        "steady-state",
        allocs_per_query,
        if alloc_counter_active {
            "active"
        } else {
            "NOT registered — value meaningless"
        }
    );
    println!("(json: {path})");
}
