//! # pv-uvindex — the UV-index baseline (2-D circular uncertainty regions)
//!
//! The paper compares the PV-index against the **UV-index** of Cheng et al.
//! (ICDE 2010, the paper's reference \[9\]), which supports PNNQ Step 1 for
//! 2-D objects whose uncertainty is bounded by a *circle*. Its defining
//! characteristics, which the comparison in §VII exploits, are:
//!
//! 1. UV-cells are computed by *explicit boundary geometry* (hyperbolic arc
//!    intersections in \[9\]) — far more expensive than SE's rectangle
//!    tests, which is why Fig. 10(g) reports PV construction 15–25× faster;
//! 2. at query time the two indexes behave similarly on 2-D data
//!    (Fig. 9(e)/(h)).
//!
//! The original implementation is not available, so this crate rebuilds the
//! approach with the same cost profile (see DESIGN.md §3): each object's
//! UV-cell boundary is traced by **ray marching** — for a fan of rays from
//! the circle centre, a high-precision binary search finds the farthest
//! point that is not dominated under exact circle distance arithmetic
//! (`|c' − p| + r' < |c − p| − r`). The cell's bounding rectangle (padded
//! conservatively for the inter-ray gap) is then stored in the same
//! octree + hash-table scaffolding the PV-index uses, so query-time
//! comparisons are apples-to-apples.
//!
//! Because `V(o)` is not guaranteed star-shaped, ray marching is an
//! approximation; `tests/uvindex_recall.rs` (workspace root) measures its
//! Step-1 recall against ground truth — it is ≈ 1 with the default fan.

#![deny(missing_docs)]

use pv_core::params::PvParams;
use pv_core::prob::{payload_pages, pdf_payload_pages};
use pv_core::query::{FetchScratch, ProbNnEngine, Step1Engine};
use pv_core::stats::{BuildStats, SeStats, Step1Stats};
use pv_exthash::ExtHash;
use pv_geom::{HyperRect, Point};
use pv_octree::{encode_leaf_record, leaf_record_dists_sq, Octree};
use pv_rtree::{Entry, RTree, RTreeParams};
use pv_storage::codec;
use pv_storage::snapshot::{open_snapshot, SnapshotWriter};
use pv_storage::{MemPager, Pager};
use pv_uncertain::{UncertainDb, UncertainObject};
use std::collections::HashMap;
use std::time::Instant;

/// Artifact kind of UV-index snapshot files.
pub const UV_SNAPSHOT_KIND: [u8; 4] = *b"PVUV";
/// Snapshot format version this build writes and the newest it reads.
pub const UV_SNAPSHOT_VERSION: u16 = 1;

/// A circular uncertainty region: the smallest circle containing `u(o)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Circle {
    /// Centre.
    pub center: Point,
    /// Radius.
    pub radius: f64,
}

impl Circle {
    /// Circumscribed circle of a rectangle (the paper's UV-index assumes
    /// circles; rectangle datasets are wrapped conservatively).
    pub fn around(rect: &HyperRect) -> Self {
        let center = rect.center();
        let radius = rect.corners().map(|c| c.dist(&center)).fold(0.0, f64::max);
        Self { center, radius }
    }

    /// Minimum possible distance from the object to `p`.
    #[inline]
    pub fn min_dist(&self, p: &Point) -> f64 {
        (self.center.dist(p) - self.radius).max(0.0)
    }

    /// Maximum possible distance from the object to `p`.
    #[inline]
    pub fn max_dist(&self, p: &Point) -> f64 {
        self.center.dist(p) + self.radius
    }
}

/// True if some `a` in `others` dominates point `p` w.r.t. `o`:
/// `maxdist(a, p) < mindist(o, p)` under circle arithmetic.
fn point_dominated_by_any(o: &Circle, others: &[Circle], p: &Point) -> bool {
    let min_o = o.min_dist(p);
    others.iter().any(|a| a.max_dist(p) < min_o)
}

/// UV-index construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct UvParams {
    /// Number of boundary rays per cell (the fan resolution).
    pub rays: usize,
    /// Binary-search tolerance along each ray (domain units) — the
    /// "high-precision operations" of \[9\].
    pub ray_epsilon: f64,
    /// Hard cap on influence objects examined per cell (the analogue of the
    /// paper's `kglobal`).
    pub influence_k: usize,
    /// Convergence criterion of \[9\]'s incremental construction: stop once
    /// this many consecutive NN objects leave the cell boundary unchanged.
    pub stable_streak: usize,
    /// Disk page size.
    pub page_size: usize,
    /// Main-memory budget for octree non-leaf nodes.
    pub mem_budget: usize,
}

impl Default for UvParams {
    fn default() -> Self {
        Self {
            rays: 180,
            ray_epsilon: 1e-3,
            influence_k: 200,
            stable_streak: 30,
            page_size: 4096,
            mem_budget: 5 * 1024 * 1024,
        }
    }
}

impl UvParams {
    /// Match the storage parameters of a PV-index configuration so that
    /// query comparisons share the same disk layout.
    pub fn matching(pv: &PvParams) -> Self {
        Self {
            page_size: pv.page_size,
            mem_budget: pv.mem_budget,
            ..Default::default()
        }
    }
}

/// The UV-index: UV-cell bounding rectangles in an octree, object payloads
/// in an extendible hash table.
pub struct UvIndex {
    domain: HyperRect,
    octree: Octree<MemPager>,
    secondary: ExtHash<MemPager>,
    pager: MemPager,
    page_size: usize,
    objects: HashMap<u64, UncertainObject>,
    circles: HashMap<u64, Circle>,
    cell_mbrs: HashMap<u64, HyperRect>,
    build_stats: BuildStats,
}

impl std::fmt::Debug for UvIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UvIndex")
            .field("objects", &self.objects.len())
            .field("page_size", &self.page_size)
            .finish_non_exhaustive()
    }
}

impl UvIndex {
    /// Builds the UV-index over a 2-D database.
    ///
    /// # Panics
    /// If the database is not two-dimensional (the UV-index is 2-D only —
    /// the very limitation the PV-index removes).
    pub fn build(db: &UncertainDb, params: UvParams) -> Self {
        assert_eq!(db.dim(), 2, "the UV-index only supports 2-D data");
        let t_total = Instant::now();
        let pager = MemPager::new(params.page_size);
        let octree = Octree::new(
            pager.clone(),
            db.domain.clone(),
            params.mem_budget,
            8 + 2 * 16,
        );
        let secondary = ExtHash::new(pager.clone());
        let circles: HashMap<u64, Circle> = db
            .objects
            .iter()
            .map(|o| (o.id, Circle::around(&o.region)))
            .collect();
        // Influence sets come from a mean-position R-tree, like the paper's
        // bootstrap.
        let mean_tree = {
            let entries: Vec<Entry> = db
                .objects
                .iter()
                .map(|o| Entry {
                    rect: HyperRect::from_point(&o.region.center()),
                    id: o.id,
                })
                .collect();
            RTree::bulk_load(2, RTreeParams::with_fanout(100), entries)
        };

        let mut index = Self {
            domain: db.domain.clone(),
            octree,
            secondary,
            pager,
            page_size: params.page_size,
            objects: db.objects.iter().map(|o| (o.id, o.clone())).collect(),
            circles,
            cell_mbrs: HashMap::with_capacity(db.len()),
            build_stats: BuildStats::default(),
        };

        let mut se_total = SeStats::default();
        let t_cells = Instant::now();
        for o in &db.objects {
            let t_cset = Instant::now();
            let influence: Vec<Circle> = mean_tree
                .nn_iter(&o.region.center())
                .filter(|n| n.id != o.id)
                .take(params.influence_k)
                .map(|n| index.circles[&n.id].clone())
                .collect();
            let cset_time = t_cset.elapsed();
            let (mbr, used) = index.trace_cell(&index.circles[&o.id], &influence, &params);
            se_total.absorb(&SeStats {
                cset_time,
                cset_size: used,
                ..Default::default()
            });
            index.cell_mbrs.insert(o.id, mbr);
        }
        se_total.refine_time = t_cells.elapsed();

        let t_insert = Instant::now();
        let ids: Vec<u64> = index.cell_mbrs.keys().copied().collect();
        for id in ids {
            let o = &index.objects[&id];
            let mbr = index.cell_mbrs[&id].clone();
            index.secondary.put(id, &o.encode());
            let record = encode_leaf_record(id, &o.region);
            let mbrs = &index.cell_mbrs;
            let lookup = move |i: u64| mbrs[&i].clone();
            index.octree.insert(&mbr, &record, &lookup);
        }
        index.build_stats = BuildStats {
            total_time: t_total.elapsed(),
            se: se_total,
            insert_time: t_insert.elapsed(),
            ubr_count: index.objects.len(),
        };
        index
    }

    /// Traces the UV-cell boundary of circle `o` and returns a padded
    /// bounding rectangle, clipped to the domain, plus the number of
    /// influence objects actually processed.
    ///
    /// Mirrors the incremental construction of \[9\]: influence objects are
    /// processed one at a time (in NN order) and every one of them has its
    /// bisector hyperbola intersected with the *entire* evolving cell
    /// boundary — here realised as a per-ray high-precision binary search
    /// of the frontier against that object alone, keeping the per-ray
    /// minimum. There is no early exit per object (each retained hyperbola
    /// pays the full boundary cost), and processing stops only once
    /// `stable_streak` consecutive objects leave the boundary unchanged —
    /// the cost asymmetry §VII measures in Fig. 10(g).
    fn trace_cell(
        &self,
        o: &Circle,
        influence: &[Circle],
        params: &UvParams,
    ) -> (HyperRect, usize) {
        let c = &o.center;
        // t_max: the farthest any cell point can be from the centre — the
        // domain diagonal bounds it.
        let t_max = self
            .domain
            .corners()
            .map(|corner| corner.dist(c))
            .fold(0.0, f64::max);
        let mut frontier = vec![t_max; params.rays];
        let at = |k: usize, t: f64| {
            let ang = k as f64 / params.rays as f64 * std::f64::consts::TAU;
            Point::new(vec![c[0] + t * ang.cos(), c[1] + t * ang.sin()])
        };
        let mut streak = 0usize;
        let mut used = 0usize;
        for a in influence {
            used += 1;
            let single = std::slice::from_ref(a);
            let mut changed = false;
            for (k, slot) in frontier.iter_mut().enumerate() {
                // Intersect a's bisector with this boundary ray. The real
                // UV-index solves the hyperbola/arc intersection for every
                // retained pair whether or not it ends up clipping the
                // cell, so the bisection runs unconditionally over the full
                // ray; a crossing beyond the current frontier (or absent
                // altogether) simply leaves the frontier unchanged.
                let mut t_lo = 0.0f64;
                let mut t_hi = t_max;
                while t_hi - t_lo > params.ray_epsilon {
                    let mid = 0.5 * (t_lo + t_hi);
                    if point_dominated_by_any(o, single, &at(k, mid)) {
                        t_hi = mid;
                    } else {
                        t_lo = mid;
                    }
                }
                let crossing_found = point_dominated_by_any(o, single, &at(k, t_hi));
                if crossing_found && t_hi < *slot {
                    *slot = t_hi;
                    changed = true;
                }
            }
            if changed {
                streak = 0;
            } else {
                streak += 1;
                if streak >= params.stable_streak {
                    break;
                }
            }
        }
        let mut lo = [c[0], c[1]];
        let mut hi = [c[0], c[1]];
        for (k, &t) in frontier.iter().enumerate() {
            // Conservative padding: the frontier between adjacent rays can
            // bulge outward by the chord factor 1/cos(π/rays).
            let pad = (t / (std::f64::consts::PI / params.rays as f64).cos()).min(t_max);
            let p = at(k, pad + params.ray_epsilon);
            lo[0] = lo[0].min(p[0]);
            lo[1] = lo[1].min(p[1]);
            hi[0] = hi[0].max(p[0]);
            hi[1] = hi[1].max(p[1]);
        }
        // Clip to the domain; the cell always contains the circle itself.
        let mbr = HyperRect::new(
            vec![
                (lo[0].min(c[0] - o.radius)).max(self.domain.lo()[0]),
                (lo[1].min(c[1] - o.radius)).max(self.domain.lo()[1]),
            ],
            vec![
                (hi[0].max(c[0] + o.radius)).min(self.domain.hi()[0]),
                (hi[1].max(c[1] + o.radius)).min(self.domain.hi()[1]),
            ],
        );
        (mbr, used)
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Construction statistics (comparable with [`pv_core::PvIndex`]'s).
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// The UV-cell bounding rectangle of an object.
    pub fn cell_mbr(&self, id: u64) -> Option<&HyperRect> {
        self.cell_mbrs.get(&id)
    }

    /// The shared simulated disk.
    pub fn pager(&self) -> &MemPager {
        &self.pager
    }

    /// Serialises the index into snapshot bytes (kind `PVUV`, version 1,
    /// [`pv_storage::snapshot`] envelope): domain, build stats, object
    /// catalog, the ray-marched UV-cell MBRs (the expensive artifact worth
    /// persisting), the raw disk image, and the octree/hash-table state.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        use pv_core::snapshot as snap;
        let mut w = SnapshotWriter::new(UV_SNAPSHOT_KIND, UV_SNAPSHOT_VERSION);
        let out = w.buf();
        codec::put_u32(out, self.page_size as u32);
        snap::put_rect(out, &self.domain);
        snap::put_build_stats(out, &self.build_stats);
        let mut ids: Vec<u64> = self.objects.keys().copied().collect();
        ids.sort_unstable();
        codec::put_u64(out, ids.len() as u64);
        for id in &ids {
            codec::put_bytes(out, &self.objects[id].encode());
            snap::put_rect(out, &self.cell_mbrs[id]);
        }
        snap::put_pager_image(out, &self.pager);
        codec::put_bytes(out, &self.octree.to_snapshot());
        codec::put_bytes(out, &self.secondary.to_snapshot());
        w.finish()
    }

    /// Reconstructs an index from [`UvIndex::to_snapshot_bytes`] output —
    /// no ray marching is repeated; the circle catalog is re-derived
    /// deterministically from the stored regions.
    ///
    /// # Errors
    /// Any corruption or version skew as a
    /// [`DecodeError`](pv_storage::codec::DecodeError); never panics.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, pv_storage::codec::DecodeError> {
        use pv_core::snapshot as snap;
        use pv_storage::codec::DecodeError;
        let (mut r, _version) = open_snapshot(
            bytes,
            UV_SNAPSHOT_KIND,
            "UV-index snapshot",
            UV_SNAPSHOT_VERSION,
        )?;
        let page_size = r.try_u32()? as usize;
        let domain = snap::try_rect(&mut r, 2)?;
        let build_stats = snap::try_build_stats(&mut r)?;
        let n = r.try_u64()? as usize;
        let mut objects = HashMap::with_capacity(n.min(1 << 20));
        let mut cell_mbrs = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let rec = r.try_bytes()?;
            let o = UncertainObject::try_decode(&rec)?;
            if o.region.dim() != 2 {
                return Err(DecodeError::Invalid {
                    context: "UV-index snapshot object dimensionality",
                });
            }
            cell_mbrs.insert(o.id, snap::try_rect(&mut r, 2)?);
            objects.insert(o.id, o);
        }
        let pager = snap::try_pager_image(&mut r)?;
        let octree = Octree::from_snapshot(pager.clone(), &r.try_bytes()?)?;
        let secondary = ExtHash::from_snapshot(pager.clone(), &r.try_bytes()?)?;
        let circles = objects
            .values()
            .map(|o| (o.id, Circle::around(&o.region)))
            .collect();
        Ok(Self {
            domain,
            octree,
            secondary,
            pager,
            page_size,
            objects,
            circles,
            cell_mbrs,
            build_stats,
        })
    }

    /// Saves the index snapshot to a file; see [`UvIndex::to_snapshot_bytes`].
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_snapshot_bytes())
    }

    /// Loads an index saved with [`UvIndex::save`]; corruption yields an
    /// [`std::io::ErrorKind::InvalidData`] error instead of a panic.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_snapshot_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl Step1Engine for UvIndex {
    fn engine_name(&self) -> &'static str {
        "uv-index"
    }

    fn dim(&self) -> usize {
        2
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    /// PNNQ Step 1 via the UV-index: leaf lookup + min/max pruning
    /// (identical query path to the PV-index, different cells).
    fn step1(&self, q: &Point) -> (Vec<u64>, Step1Stats) {
        let mut ids = Vec::new();
        let stats = self.step1_into(q, &mut ids, &mut FetchScratch::default());
        (ids, stats)
    }

    /// Allocation-free Step 1 (same streaming leaf path as the PV-index).
    fn step1_into(&self, q: &Point, ids: &mut Vec<u64>, scratch: &mut FetchScratch) -> Step1Stats {
        use std::sync::atomic::Ordering;
        let t0 = Instant::now();
        let io0 = self.pager.stats().reads.load(Ordering::Relaxed);
        let FetchScratch { octree, cand, .. } = scratch;
        cand.clear();
        self.octree.point_query_with(q, octree, |rec| {
            cand.push(leaf_record_dists_sq(rec, 2, q));
        });
        let tau_sq = cand
            .iter()
            .map(|&(_, _, maxd)| maxd)
            .fold(f64::INFINITY, f64::min);
        ids.clear();
        ids.extend(
            cand.iter()
                .filter(|&&(_, mind, _)| mind <= tau_sq)
                .map(|&(id, _, _)| id),
        );
        ids.sort_unstable();
        Step1Stats {
            time: t0.elapsed(),
            io_reads: self.pager.stats().reads.load(Ordering::Relaxed) - io0,
            candidates: cand.len(),
            answers: ids.len(),
        }
    }
}

impl ProbNnEngine for UvIndex {
    fn candidate_region(&self, id: u64) -> &HyperRect {
        &self.objects[&id].region
    }

    /// Fetches the payload from the UV-index's own extendible-hash secondary
    /// index (charging real page reads) plus the pdf-payload pages — the
    /// same Step-2 cost model as the PV-index, so full-query comparisons are
    /// apples-to-apples.
    fn fetch_candidate(&self, id: u64) -> (UncertainObject, u64) {
        let io0 = self.pager.stats().snapshot();
        let buf = self
            .secondary
            .get(id)
            .expect("step-1 answer must exist in the secondary index");
        let obj = UncertainObject::try_decode(&buf).expect("secondary record corrupted");
        let io = self.pager.stats().snapshot().since(&io0).reads;
        let total = io + pdf_payload_pages(&obj, self.page_size);
        (obj, total)
    }

    /// Decode-into-buffer payload path: same storage traffic and same
    /// narrow per-fetch I/O bracket as [`UvIndex::fetch_candidate`], zero
    /// materialisation.
    fn fetch_dists_sq(
        &self,
        id: u64,
        q: &Point,
        out: &mut Vec<f64>,
        scratch: &mut FetchScratch,
    ) -> u64 {
        use std::sync::atomic::Ordering;
        let io0 = self.pager.stats().reads.load(Ordering::Relaxed);
        let found = self
            .secondary
            .get_into(id, &mut scratch.page, &mut scratch.record);
        assert!(found, "step-1 answer must exist in the secondary index");
        let io = self.pager.stats().reads.load(Ordering::Relaxed) - io0;
        let view = pv_uncertain::EncodedObject::parse(&scratch.record)
            .expect("secondary record corrupted");
        view.dists_sq_into(q, &mut scratch.samples, out);
        io + payload_pages(view.n_samples(), 2, self.page_size)
    }
}

/// Snapshot persistence through the [`pv_core::db::Db`] facade.
impl pv_core::db::PersistentEngine for UvIndex {
    fn snapshot_bytes(&self) -> std::io::Result<Vec<u8>> {
        Ok(self.to_snapshot_bytes())
    }

    fn from_snapshot_bytes(bytes: &[u8]) -> std::io::Result<Self> {
        // The inherent decoder; its typed error chains through InvalidData.
        UvIndex::from_snapshot_bytes(bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_workload::{queries, synthetic, SyntheticConfig};

    fn db2d(n: usize, seed: u64) -> UncertainDb {
        synthetic(&SyntheticConfig {
            n,
            dim: 2,
            max_side: 150.0,
            samples: 8,
            seed,
        })
    }

    #[test]
    fn circle_around_rect() {
        let r = HyperRect::new(vec![0.0, 0.0], vec![6.0, 8.0]);
        let c = Circle::around(&r);
        assert_eq!(c.center.coords(), &[3.0, 4.0]);
        assert!((c.radius - 5.0).abs() < 1e-12);
        let p = Point::new(vec![3.0, 14.0]);
        assert!((c.min_dist(&p) - 5.0).abs() < 1e-12);
        assert!((c.max_dist(&p) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn min_dist_zero_inside() {
        let c = Circle {
            center: Point::new(vec![0.0, 0.0]),
            radius: 2.0,
        };
        assert_eq!(c.min_dist(&Point::new(vec![1.0, 0.0])), 0.0);
    }

    #[test]
    fn cell_mbr_contains_circle() {
        let db = db2d(150, 3);
        let uv = UvIndex::build(&db, UvParams::default());
        for o in &db.objects {
            let circle = Circle::around(&o.region);
            let mbr = uv.cell_mbr(o.id).unwrap();
            // the circle's bounding box (clipped) must be inside the cell MBR
            for j in 0..2 {
                assert!(
                    mbr.lo()[j] <= (circle.center[j] - circle.radius).max(db.domain.lo()[j]) + 1e-9
                );
                assert!(
                    mbr.hi()[j] >= (circle.center[j] + circle.radius).min(db.domain.hi()[j]) - 1e-9
                );
            }
        }
    }

    #[test]
    fn two_object_cells_split_space() {
        // Two circles far apart: each cell MBR must stop near the bisector.
        let domain = HyperRect::cube(2, 0.0, 1000.0);
        let a =
            UncertainObject::uniform(1, HyperRect::new(vec![100.0, 490.0], vec![120.0, 510.0]), 4);
        let b =
            UncertainObject::uniform(2, HyperRect::new(vec![880.0, 490.0], vec![900.0, 510.0]), 4);
        let db = UncertainDb::new(domain, vec![a, b]);
        let uv = UvIndex::build(&db, UvParams::default());
        let ma = uv.cell_mbr(1).unwrap();
        assert!(ma.hi()[0] < 700.0, "cell of a reaches {}", ma.hi()[0]);
        assert!(
            ma.hi()[0] > 480.0,
            "cell of a stops early at {}",
            ma.hi()[0]
        );
    }

    #[test]
    fn step1_recall_is_high() {
        let db = db2d(250, 5);
        let uv = UvIndex::build(&db, UvParams::default());
        let mut found = 0usize;
        let mut expected = 0usize;
        for q in queries::uniform(&db.domain, 40, 7) {
            let (got, _) = uv.step1(&q);
            let want = pv_core::verify::possible_nn(db.objects.iter(), &q);
            expected += want.len();
            found += want.iter().filter(|id| got.contains(id)).count();
        }
        let recall = found as f64 / expected as f64;
        assert!(recall > 0.98, "recall {recall}");
    }

    #[test]
    fn full_query_through_the_engine_trait() {
        use pv_core::query::QuerySpec;
        let db = db2d(150, 13);
        let uv = UvIndex::build(&db, UvParams::default());
        assert_eq!(uv.engine_name(), "uv-index");
        for q in queries::uniform(&db.domain, 10, 17) {
            let out = uv.execute(&q, &QuerySpec::new()).unwrap();
            let total: f64 = out.answers.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-6, "sum {total}");
            // payloads come off the secondary index: real page reads
            assert!(out.stats.pc_io_reads > out.answers.len() as u64 / 2);
        }
    }

    #[test]
    fn circles_loosen_but_never_miss_rect_answers() {
        // Circle min/max distances bracket the rectangle ones.
        let db = db2d(100, 9);
        for o in &db.objects {
            let c = Circle::around(&o.region);
            let p = Point::new(vec![500.0, 700.0]);
            assert!(c.min_dist(&p) <= pv_geom::min_dist(&o.region, &p) + 1e-9);
            assert!(c.max_dist(&p) >= pv_geom::max_dist(&o.region, &p) - 1e-9);
        }
    }

    #[test]
    fn snapshot_roundtrips_without_retracing() {
        use pv_core::query::QuerySpec;
        let db = db2d(120, 21);
        let uv = UvIndex::build(&db, UvParams::default());
        let t0 = Instant::now();
        let loaded = UvIndex::from_snapshot_bytes(&uv.to_snapshot_bytes()).unwrap();
        let load_time = t0.elapsed();
        assert!(
            load_time < uv.build_stats().total_time,
            "load {load_time:?} should beat the ray-marched build {:?}",
            uv.build_stats().total_time
        );
        for o in &db.objects {
            assert_eq!(loaded.cell_mbr(o.id), uv.cell_mbr(o.id));
        }
        for q in queries::uniform(&db.domain, 15, 23) {
            assert_eq!(loaded.step1(&q).0, uv.step1(&q).0);
            assert_eq!(
                loaded.execute(&q, &QuerySpec::new()).unwrap().answers,
                uv.execute(&q, &QuerySpec::new()).unwrap().answers
            );
        }
        // corruption is an error, not a panic
        let bytes = uv.to_snapshot_bytes();
        assert!(UvIndex::from_snapshot_bytes(&bytes[..bytes.len() - 9]).is_err());
    }

    #[test]
    #[should_panic(expected = "only supports 2-D")]
    fn rejects_3d_data() {
        let db = synthetic(&SyntheticConfig {
            n: 10,
            dim: 3,
            samples: 4,
            ..Default::default()
        });
        UvIndex::build(&db, UvParams::default());
    }

    #[test]
    fn construction_slower_than_pv() {
        // The headline of Fig. 10(g): PV construction is much faster. Use a
        // small db but assert the direction.
        let db = db2d(120, 11);
        let t_uv = Instant::now();
        let _uv = UvIndex::build(&db, UvParams::default());
        let uv_time = t_uv.elapsed();
        let t_pv = Instant::now();
        let _pv = pv_core::PvIndex::build(&db, PvParams::default());
        let pv_time = t_pv.elapsed();
        assert!(
            uv_time > pv_time,
            "UV {uv_time:?} should cost more than PV {pv_time:?}"
        );
    }
}
