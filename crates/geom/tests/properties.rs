//! Property-based tests for the geometry kernel.

use proptest::prelude::*;
use pv_geom::{
    dominates, max_dist_sq, max_dist_sq_rr, min_dist_sq, min_dist_sq_rr, point_dominated,
    region_fully_dominated, HyperRect, Point,
};

/// Strategy: a rectangle in `[-100, 100]^d` with sides up to 40.
fn arb_rect(d: usize) -> impl Strategy<Value = HyperRect> {
    (
        prop::collection::vec(-100.0f64..100.0, d),
        prop::collection::vec(0.0f64..40.0, d),
    )
        .prop_map(|(lo, ext)| {
            let hi: Vec<f64> = lo.iter().zip(ext.iter()).map(|(l, e)| l + e).collect();
            HyperRect::new(lo, hi)
        })
}

fn arb_point(d: usize) -> impl Strategy<Value = Point> {
    prop::collection::vec(-120.0f64..120.0, d).prop_map(Point::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn min_le_max_point(r in arb_rect(3), p in arb_point(3)) {
        prop_assert!(min_dist_sq(&r, &p) <= max_dist_sq(&r, &p) + 1e-12);
    }

    #[test]
    fn min_le_max_rect(a in arb_rect(3), b in arb_rect(3)) {
        prop_assert!(min_dist_sq_rr(&a, &b) <= max_dist_sq_rr(&a, &b) + 1e-12);
    }

    #[test]
    fn rect_distances_bound_sampled_point_pairs(a in arb_rect(2), b in arb_rect(2)) {
        // sample corner/center points of both rects; every pairwise distance
        // must lie within [min_dist_rr, max_dist_rr]
        let lo = min_dist_sq_rr(&a, &b);
        let hi = max_dist_sq_rr(&a, &b);
        let pts = |r: &HyperRect| {
            let mut v: Vec<Point> = r.corners().collect();
            v.push(r.center());
            v
        };
        for pa in pts(&a) {
            for pb in pts(&b) {
                let d = pa.dist_sq(&pb);
                prop_assert!(d >= lo - 1e-9);
                prop_assert!(d <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn intersection_symmetry(a in arb_rect(3), b in arb_rect(3)) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        if a.intersects(&b) {
            prop_assert_eq!(min_dist_sq_rr(&a, &b), 0.0);
        } else {
            prop_assert!(min_dist_sq_rr(&a, &b) > 0.0);
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(3), b in arb_rect(3)) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn domination_implies_pointwise(a in arb_rect(2), b in arb_rect(2), r in arb_rect(2)) {
        if dominates(&a, &b, &r) {
            // every corner + center of r must be point-dominated
            for p in r.corners().chain(std::iter::once(r.center())) {
                prop_assert!(point_dominated(&a, &b, &p),
                    "a={a:?} b={b:?} r={r:?} p={p:?}");
            }
        }
    }

    #[test]
    fn domination_never_holds_for_overlapping(a in arb_rect(2), r in arb_rect(2)) {
        // Lemma 2: a cannot dominate an object it intersects, for any region.
        let b = a.clone();
        prop_assert!(!dominates(&a, &b, &r));
    }

    #[test]
    fn fully_dominated_implies_each_sample_dominated_by_someone(
        cs in prop::collection::vec(arb_rect(2), 1..5),
        o in arb_rect(2),
        r in arb_rect(2),
    ) {
        if region_fully_dominated(&r, &cs, &o, 32, None) {
            for p in r.corners().chain(std::iter::once(r.center())) {
                let covered = cs.iter().any(|a| point_dominated(a, &o, &p));
                prop_assert!(covered, "point {p:?} escaped the dominated union");
            }
        }
    }

    #[test]
    fn octants_tile_without_gaps(r in arb_rect(3), p in arb_point(3)) {
        if r.contains_point(&p) {
            let kids = r.octants();
            let hits = kids.iter().filter(|k| k.contains_point(&p)).count();
            prop_assert!(hits >= 1);
            prop_assert!(kids[r.octant_of(&p)].contains_point(&p));
        }
    }

    #[test]
    fn octant_volumes_sum(r in arb_rect(4)) {
        let total: f64 = r.octants().iter().map(HyperRect::volume).sum();
        prop_assert!((total - r.volume()).abs() <= 1e-6 * r.volume().max(1.0));
    }
}
