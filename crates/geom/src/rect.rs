//! Axis-parallel hyper-rectangles.

use crate::point::Point;
use std::fmt;

/// A closed axis-parallel hyper-rectangle `[lo_1, hi_1] × … × [lo_d, hi_d]`.
///
/// Used throughout the workspace for uncertainty regions `u(o)`, UBRs `B(o)`,
/// R-tree MBRs, octree cells and SE bounds. Degenerate rectangles (`lo == hi`
/// in some or all dimensions) are valid and represent points / lower
/// dimensional boxes.
#[derive(Clone, PartialEq)]
pub struct HyperRect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl HyperRect {
    /// Creates a rectangle from its lower and upper corners.
    ///
    /// # Panics
    /// Panics (debug builds) if the corners have different dimensionality or
    /// if `lo > hi` in any dimension.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        debug_assert_eq!(lo.len(), hi.len());
        debug_assert!(
            lo.iter().zip(hi.iter()).all(|(l, h)| l <= h),
            "invalid rect: lo {:?} hi {:?}",
            lo,
            hi
        );
        Self {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        }
    }

    /// A rectangle degenerated to a single point.
    pub fn from_point(p: &Point) -> Self {
        Self::new(p.coords().to_vec(), p.coords().to_vec())
    }

    /// The cube `[lo, hi]^dim`.
    pub fn cube(dim: usize, lo: f64, hi: f64) -> Self {
        Self::new(vec![lo; dim], vec![hi; dim])
    }

    /// Builds the minimum bounding rectangle of a non-empty point set.
    pub fn bounding_points<'a>(points: impl IntoIterator<Item = &'a Point>) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut lo = first.coords().to_vec();
        let mut hi = first.coords().to_vec();
        for p in it {
            for j in 0..lo.len() {
                lo[j] = lo[j].min(p[j]);
                hi[j] = hi[j].max(p[j]);
            }
        }
        Some(Self::new(lo, hi))
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Mutable lower corner (used by SE when moving bounds in place).
    #[inline]
    pub fn lo_mut(&mut self) -> &mut [f64] {
        &mut self.lo
    }

    /// Mutable upper corner.
    #[inline]
    pub fn hi_mut(&mut self) -> &mut [f64] {
        &mut self.hi
    }

    /// Both corners, mutably — lets per-dimension updates that read one
    /// corner while writing the other iterate in lockstep instead of
    /// index-pairing two separate borrows.
    #[inline]
    pub fn corners_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.lo, &mut self.hi)
    }

    /// Side length along dimension `j`.
    #[inline]
    pub fn extent(&self, j: usize) -> f64 {
        // pv-lint: allow(hot-path-no-panic, reason = "j ranges over 0..dim in every caller; both corners are dim-long by construction")
        self.hi[j] - self.lo[j]
    }

    /// The centre point.
    pub fn center(&self) -> Point {
        Point::new(
            self.lo
                .iter()
                .zip(self.hi.iter())
                .map(|(l, h)| 0.5 * (l + h))
                .collect(),
        )
    }

    /// d-dimensional volume (product of extents).
    pub fn volume(&self) -> f64 {
        (0..self.dim()).map(|j| self.extent(j)).product()
    }

    /// Sum of side lengths (the R*-tree "margin").
    pub fn margin(&self) -> f64 {
        (0..self.dim()).map(|j| self.extent(j)).sum()
    }

    /// True if the (closed) rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((sl, sh), (ol, oh))| sl <= oh && ol <= sh)
    }

    /// True if `p` lies inside the closed rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dim(), p.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p.coords())
            .all(|((l, h), c)| l <= c && c <= h)
    }

    /// True if `other` is fully inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((sl, sh), (ol, oh))| sl <= ol && oh <= sh)
    }

    /// Smallest rectangle containing both inputs.
    pub fn union(&self, other: &HyperRect) -> HyperRect {
        debug_assert_eq!(self.dim(), other.dim());
        HyperRect::new(
            (0..self.dim())
                .map(|j| self.lo[j].min(other.lo[j]))
                .collect(),
            (0..self.dim())
                .map(|j| self.hi[j].max(other.hi[j]))
                .collect(),
        )
    }

    /// Extends `self` in place to cover `other`.
    pub fn union_in_place(&mut self, other: &HyperRect) {
        debug_assert_eq!(self.dim(), other.dim());
        for j in 0..self.dim() {
            self.lo[j] = self.lo[j].min(other.lo[j]);
            self.hi[j] = self.hi[j].max(other.hi[j]);
        }
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersection(&self, other: &HyperRect) -> Option<HyperRect> {
        if !self.intersects(other) {
            return None;
        }
        Some(HyperRect::new(
            (0..self.dim())
                .map(|j| self.lo[j].max(other.lo[j]))
                .collect(),
            (0..self.dim())
                .map(|j| self.hi[j].min(other.hi[j]))
                .collect(),
        ))
    }

    /// Volume of the intersection (0 when disjoint). Avoids allocating.
    pub fn overlap_volume(&self, other: &HyperRect) -> f64 {
        let mut v = 1.0;
        for j in 0..self.dim() {
            let w = self.hi[j].min(other.hi[j]) - self.lo[j].max(other.lo[j]);
            if w <= 0.0 {
                return 0.0;
            }
            v *= w;
        }
        v
    }

    /// Rectangle grown by `eps` on every side (clamped to stay valid).
    pub fn inflate(&self, eps: f64) -> HyperRect {
        HyperRect::new(
            self.lo.iter().map(|l| l - eps).collect(),
            self.hi.iter().map(|h| h + eps).collect(),
        )
    }

    /// Splits along dimension `j` at coordinate `x ∈ [lo_j, hi_j]`, returning
    /// the `(low, high)` halves.
    pub fn split_at(&self, j: usize, x: f64) -> (HyperRect, HyperRect) {
        debug_assert!(self.lo[j] <= x && x <= self.hi[j]);
        let mut left = self.clone();
        let mut right = self.clone();
        left.hi[j] = x;
        right.lo[j] = x;
        (left, right)
    }

    /// Index of the dimension with the largest extent.
    pub fn longest_dim(&self) -> usize {
        (0..self.dim())
            .max_by(|&a, &b| {
                self.extent(a)
                    .partial_cmp(&self.extent(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty dims")
    }

    /// Largest side length.
    pub fn max_extent(&self) -> f64 {
        (0..self.dim()).map(|j| self.extent(j)).fold(0.0, f64::max)
    }

    /// Iterates over all `2^d` corner points. Intended for small `d`
    /// (the paper evaluates d ≤ 5).
    pub fn corners(&self) -> impl Iterator<Item = Point> + '_ {
        let d = self.dim();
        (0..(1usize << d)).map(move |mask| {
            Point::new(
                (0..d)
                    .map(|j| {
                        if mask >> j & 1 == 1 {
                            self.hi[j]
                        } else {
                            self.lo[j]
                        }
                    })
                    .collect(),
            )
        })
    }

    /// The `2^d` equal sub-cells produced by splitting at the centre
    /// (octree children). Child `i`'s bit `j` selects the upper half of
    /// dimension `j`.
    pub fn octants(&self) -> Vec<HyperRect> {
        let d = self.dim();
        let c = self.center();
        (0..(1usize << d))
            .map(|mask| {
                let mut lo = self.lo.to_vec();
                let mut hi = self.hi.to_vec();
                for j in 0..d {
                    if mask >> j & 1 == 1 {
                        lo[j] = c[j];
                    } else {
                        hi[j] = c[j];
                    }
                }
                HyperRect::new(lo, hi)
            })
            .collect()
    }

    /// The octant index (bit mask) of the child cell of `self` that contains
    /// point `p` (ties go to the upper half, matching [`Self::octants`]).
    pub fn octant_of(&self, p: &Point) -> usize {
        let c = self.center();
        (0..self.dim()).fold(0usize, |m, j| if p[j] >= c[j] { m | (1 << j) } else { m })
    }
}

impl fmt::Debug for HyperRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rect[{:?}..{:?}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[f64], hi: &[f64]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn basic_measures() {
        let a = r(&[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(a.volume(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.center().coords(), &[1.0, 1.5]);
        assert_eq!(a.longest_dim(), 1);
        assert_eq!(a.max_extent(), 3.0);
    }

    #[test]
    fn intersection_union() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let b = r(&[1.0, 1.0], &[3.0, 3.0]);
        let c = r(&[5.0, 5.0], &[6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&b).unwrap(), r(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(a.intersection(&c).is_none());
        assert_eq!(a.union(&c), r(&[0.0, 0.0], &[6.0, 6.0]));
        assert_eq!(a.overlap_volume(&b), 1.0);
        assert_eq!(a.overlap_volume(&c), 0.0);
    }

    #[test]
    fn touching_rects_intersect() {
        let a = r(&[0.0], &[1.0]);
        let b = r(&[1.0], &[2.0]);
        assert!(a.intersects(&b)); // closed rectangles share the boundary point
    }

    #[test]
    fn containment() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        let b = r(&[1.0, 1.0], &[2.0, 2.0]);
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.contains_point(&Point::new(vec![4.0, 4.0])));
        assert!(!a.contains_point(&Point::new(vec![4.1, 0.0])));
    }

    #[test]
    fn octants_partition_volume() {
        let a = r(&[0.0, 0.0, 0.0], &[2.0, 4.0, 8.0]);
        let kids = a.octants();
        assert_eq!(kids.len(), 8);
        let total: f64 = kids.iter().map(HyperRect::volume).sum();
        assert!((total - a.volume()).abs() < 1e-9);
        // child 0 is the all-low corner cell
        assert_eq!(kids[0], r(&[0.0, 0.0, 0.0], &[1.0, 2.0, 4.0]));
        // child with all bits set is the all-high cell
        assert_eq!(kids[7], r(&[1.0, 2.0, 4.0], &[2.0, 4.0, 8.0]));
    }

    #[test]
    fn octant_of_matches_octants() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let kids = a.octants();
        let p = Point::new(vec![1.5, 0.5]);
        let idx = a.octant_of(&p);
        assert!(kids[idx].contains_point(&p));
    }

    #[test]
    fn split_and_corners() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let (l, rr) = a.split_at(0, 0.5);
        assert_eq!(l, r(&[0.0, 0.0], &[0.5, 2.0]));
        assert_eq!(rr, r(&[0.5, 0.0], &[2.0, 2.0]));
        assert_eq!(a.corners().count(), 4);
    }

    #[test]
    fn bounding_points_mbr() {
        let pts = [
            Point::new(vec![1.0, 5.0]),
            Point::new(vec![-2.0, 3.0]),
            Point::new(vec![0.0, 9.0]),
        ];
        let mbr = HyperRect::bounding_points(pts.iter()).unwrap();
        assert_eq!(mbr, r(&[-2.0, 3.0], &[1.0, 9.0]));
        assert!(HyperRect::bounding_points(std::iter::empty()).is_none());
    }
}
