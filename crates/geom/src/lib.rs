//! # pv-geom — geometry kernel for uncertain nearest-neighbor search
//!
//! This crate implements the d-dimensional geometric machinery that the
//! PV-index (Zhang et al., ICDE 2013) is built on:
//!
//! * [`Point`] and axis-parallel [`HyperRect`]s with minimum/maximum
//!   Euclidean distances between points and rectangles (§III-A of the paper);
//! * *spatial domination* between rectangles — the exact decision procedure of
//!   Emrich et al. (SIGMOD 2010, the paper's reference \[17\]) deciding whether
//!   every point of a rectangle `R` is strictly closer to rectangle `A` than
//!   to rectangle `B` ([`dominates`]);
//! * *domination-count estimation* ([`region_fully_dominated`]): a budgeted
//!   recursive partitioning of `R` proving `R ∩ I(Cset, o) = ∅`, i.e. that the
//!   whole region is covered by the dominated union `U(Cset, o)` (§V-B);
//! * bisector utilities for the hyperplane `H_{a,b}` of Equation (1), used by
//!   tests and the naive verifier.
//!
//! All distance computations are done on **squared** distances where possible
//! to avoid `sqrt` in hot loops; public helpers expose both forms.
//!
//! The crate is dependency-free (besides dev-dependencies for testing) and is
//! shared by every other crate in the workspace.

#![deny(missing_docs)]

pub mod dist;
pub mod domination;
pub mod hyperplane;
pub mod point;
pub mod quantize;
pub mod rect;

pub use dist::{max_dist, max_dist_sq, max_dist_sq_rr, min_dist, min_dist_sq, min_dist_sq_rr, sq};
pub use domination::{
    dominates, point_dominated, region_fully_dominated, DominationRun, DominationStats,
};
pub use hyperplane::{bisector_side, BisectorSide};
pub use point::Point;
pub use quantize::{snap_outward, QuantizedRect};
pub use rect::HyperRect;

/// A total order wrapper for `f64` used in priority queues.
///
/// All distances in this workspace are finite and non-negative, so the
/// ordering is total in practice; NaN is treated as greater than everything
/// to keep `Ord` lawful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(pub f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or_else(|| match (self.0.is_nan(), other.0.is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => unreachable!("non-NaN floats always compare"),
            })
    }
}

#[cfg(test)]
mod ordered_tests {
    use super::OrderedF64;

    #[test]
    fn orders_normal_floats() {
        assert!(OrderedF64(1.0) < OrderedF64(2.0));
        assert!(OrderedF64(-1.0) < OrderedF64(0.0));
        assert_eq!(OrderedF64(3.5), OrderedF64(3.5));
    }

    #[test]
    fn nan_sorts_last() {
        assert!(OrderedF64(f64::NAN) > OrderedF64(f64::INFINITY));
        assert_eq!(
            OrderedF64(f64::NAN).cmp(&OrderedF64(f64::NAN)),
            std::cmp::Ordering::Equal
        );
    }
}
