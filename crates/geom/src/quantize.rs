//! Conservative rectangle quantization.
//!
//! The paper's conclusion lists *compression* of the precomputed structures
//! as future work. This module provides the geometric primitive for it: a
//! UBR snapped **outward** onto a `steps × … × steps` grid over the domain
//! still contains the PV-cell (soundness is monotone under enlargement), but
//! its corners can be stored as small integers instead of `f64`s — 2 bytes
//! per coordinate at 2¹⁶ steps instead of 8, a 4× reduction of the
//! secondary-index UBR payload.

use crate::HyperRect;

/// A rectangle quantized to grid indices over a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedRect {
    /// Inclusive lower grid indices.
    pub lo: Vec<u16>,
    /// Inclusive upper grid indices (cell indices, so `hi` maps to the
    /// *upper edge* of cell `hi`).
    pub hi: Vec<u16>,
    /// Grid resolution per dimension.
    pub steps: u16,
}

impl QuantizedRect {
    /// Quantizes `rect` over `domain`, rounding outward so that
    /// `decode(encode(r)) ⊇ r` always holds.
    ///
    /// # Panics
    /// If `rect` is not contained in `domain` (UBRs always are) or
    /// `steps == 0`.
    pub fn encode(rect: &HyperRect, domain: &HyperRect, steps: u16) -> Self {
        assert!(steps > 0);
        assert!(
            domain.contains_rect(rect),
            "rect must lie inside the domain"
        );
        let d = rect.dim();
        let mut lo = Vec::with_capacity(d);
        let mut hi = Vec::with_capacity(d);
        for j in 0..d {
            let extent = domain.extent(j);
            let cell = |x: f64| -> f64 {
                if extent <= 0.0 {
                    0.0
                } else {
                    (x - domain.lo()[j]) / extent * steps as f64
                }
            };
            // floor for the lower edge, ceil-1 for the upper cell index;
            // clamp to the grid. A degenerate side exactly on a grid line
            // would invert the range (floor == ceil), so the upper edge is
            // forced at least one cell past the lower one. The epsilon makes
            // the snap idempotent: re-encoding a decoded rectangle whose
            // corners sit on grid lines (up to float error) must not drift
            // by another cell.
            const EPS: f64 = 1e-7;
            let l = (cell(rect.lo()[j]) + EPS)
                .floor()
                .clamp(0.0, (steps - 1) as f64) as u16;
            let h_edge =
                ((cell(rect.hi()[j]) - EPS).ceil().clamp(1.0, steps as f64) as u16).max(l + 1);
            lo.push(l);
            hi.push(h_edge - 1);
        }
        Self { lo, hi, steps }
    }

    /// Reconstructs the (enlarged) rectangle covered by the grid cells.
    ///
    /// Materialises an owned [`HyperRect`], so it lives on the cold/compat
    /// tier — the Step-2 hot path streams quantized records and never calls
    /// it (`dists_sq_into` works on the encoded bytes).
    pub fn decode(&self, domain: &HyperRect) -> HyperRect {
        let d = self.lo.len();
        let mut lo = Vec::with_capacity(d); // pv-lint: allow(hot-path-no-alloc, reason = "constructor returning an owned HyperRect; hot path never materialises rectangles")
        let mut hi = Vec::with_capacity(d); // pv-lint: allow(hot-path-no-alloc, reason = "constructor returning an owned HyperRect; hot path never materialises rectangles")
        for (((&ql, &qh), &dl), &dh) in
            self.lo.iter().zip(&self.hi).zip(domain.lo()).zip(domain.hi())
        {
            let extent = dh - dl;
            let step = extent / self.steps as f64;
            // Clamp against float error at the domain edge.
            let l = (dl + ql as f64 * step).max(dl);
            let h = (dl + (qh as f64 + 1.0) * step).min(dh).max(l);
            lo.push(l);
            hi.push(h);
        }
        HyperRect::new(lo, hi)
    }

    /// Serialized size in bytes (2 per coordinate + the shared `steps`).
    pub fn encoded_len(dim: usize) -> usize {
        2 + dim * 4
    }
}

/// Convenience: snap a rectangle outward onto the grid in one call.
pub fn snap_outward(rect: &HyperRect, domain: &HyperRect, steps: u16) -> HyperRect {
    QuantizedRect::encode(rect, domain, steps).decode(domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn domain() -> HyperRect {
        HyperRect::cube(3, 0.0, 10_000.0)
    }

    #[test]
    fn roundtrip_contains_original() {
        let dom = domain();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..9_000.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.0..900.0)).collect();
            let r = HyperRect::new(lo, hi);
            for steps in [16u16, 256, 65_535] {
                let snapped = snap_outward(&r, &dom, steps);
                assert!(
                    snapped.contains_rect(&r),
                    "steps {steps}: {snapped:?} !⊇ {r:?}"
                );
                assert!(dom.contains_rect(&snapped));
            }
        }
    }

    #[test]
    fn finer_grids_are_tighter() {
        let dom = domain();
        let r = HyperRect::new(vec![1_234.5; 3], vec![2_345.6; 3]);
        let coarse = snap_outward(&r, &dom, 64);
        let fine = snap_outward(&r, &dom, 4_096);
        assert!(coarse.contains_rect(&fine));
        assert!(coarse.volume() > fine.volume());
    }

    #[test]
    fn error_bounded_by_one_cell() {
        let dom = domain();
        let steps = 1_000u16;
        let cell = 10_000.0 / steps as f64;
        let r = HyperRect::new(vec![500.0; 3], vec![700.0; 3]);
        let snapped = snap_outward(&r, &dom, steps);
        for j in 0..3 {
            assert!(snapped.lo()[j] >= r.lo()[j] - cell - 1e-9);
            assert!(snapped.hi()[j] <= r.hi()[j] + cell + 1e-9);
        }
    }

    #[test]
    fn full_domain_is_fixed_point() {
        let dom = domain();
        let snapped = snap_outward(&dom, &dom, 256);
        assert_eq!(snapped, dom);
    }

    #[test]
    fn degenerate_rect_survives() {
        let dom = domain();
        let p = HyperRect::new(vec![5_000.0; 3], vec![5_000.0; 3]);
        let snapped = snap_outward(&p, &dom, 128);
        assert!(snapped.contains_rect(&p));
        assert!(snapped.volume() > 0.0, "a grid cell has positive volume");
    }

    #[test]
    fn snapping_is_idempotent() {
        let dom = domain();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..300 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..9_000.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.0..900.0)).collect();
            let r = HyperRect::new(lo, hi);
            for steps in [64u16, 1_000, 65_535] {
                let once = snap_outward(&r, &dom, steps);
                let twice = snap_outward(&once, &dom, steps);
                assert_eq!(once, twice, "steps {steps}");
            }
        }
    }

    #[test]
    fn quantized_repr_is_compact() {
        // 3-D: 2 (steps) + 3 × 4 = 14 bytes instead of 48.
        assert_eq!(QuantizedRect::encoded_len(3), 14);
    }
}
