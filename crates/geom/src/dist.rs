//! Minimum / maximum Euclidean distances between points and rectangles.
//!
//! These are the `distmin` / `distmax` functions of §III-A of the paper: for
//! an uncertain object `o` with rectangular uncertainty region `u(o)` and a
//! point `p`, `distmin(o,p)` (`distmax(o,p)`) is the smallest (largest)
//! possible distance between any instance of `o` and `p`.

use crate::{HyperRect, Point};

/// Squares a value. Tiny helper used pervasively in distance code.
#[inline(always)]
pub fn sq(x: f64) -> f64 {
    x * x
}

/// The single loop body behind [`min_dist_sq`]. The length-pinned slice
/// patterns the dispatch arms bind (`lo @ [_, _]`, …) make the trip count a
/// compile-time constant there, so the compiler fully unrolls (and, where
/// profitable, vectorizes) those instantiations — while the dynamic fallback
/// shares this exact code, which is what keeps every dimension bit-identical
/// by construction.
#[inline(always)]
fn min_dist_sq_body(lo: &[f64], hi: &[f64], p: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ((&l, &h), &c) in lo.iter().zip(hi).zip(p) {
        if c < l {
            acc += sq(l - c);
        } else if c > h {
            acc += sq(c - h);
        }
    }
    acc
}

/// The single loop body behind [`max_dist_sq`]; see [`min_dist_sq_body`].
#[inline(always)]
fn max_dist_sq_body(lo: &[f64], hi: &[f64], p: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ((&l, &h), &c) in lo.iter().zip(hi).zip(p) {
        acc += sq((c - l).abs().max((h - c).abs()));
    }
    acc
}

/// Squared minimum distance between rectangle `r` and point `p`
/// (`0` when `p ∈ r`).
///
/// Dispatches to an unrolled instantiation of the shared body for
/// `d ∈ {2, 3, 4}` (the hot dimensionalities of both Step 1 and SE);
/// results are bit-identical in every dimension because all arms run the
/// same code.
#[inline]
pub fn min_dist_sq(r: &HyperRect, p: &Point) -> f64 {
    debug_assert_eq!(r.dim(), p.dim());
    let (lo, hi, p) = (r.lo(), r.hi(), p.coords());
    match (lo, hi, p) {
        (lo @ [_, _], hi @ [_, _], p @ [_, _]) => min_dist_sq_body(lo, hi, p),
        (lo @ [_, _, _], hi @ [_, _, _], p @ [_, _, _]) => min_dist_sq_body(lo, hi, p),
        (lo @ [_, _, _, _], hi @ [_, _, _, _], p @ [_, _, _, _]) => min_dist_sq_body(lo, hi, p),
        _ => min_dist_sq_body(lo, hi, p),
    }
}

/// Squared maximum distance between rectangle `r` and point `p`
/// (distance to the farthest corner). Dimension-dispatched like
/// [`min_dist_sq`].
#[inline]
pub fn max_dist_sq(r: &HyperRect, p: &Point) -> f64 {
    debug_assert_eq!(r.dim(), p.dim());
    let (lo, hi, p) = (r.lo(), r.hi(), p.coords());
    match (lo, hi, p) {
        (lo @ [_, _], hi @ [_, _], p @ [_, _]) => max_dist_sq_body(lo, hi, p),
        (lo @ [_, _, _], hi @ [_, _, _], p @ [_, _, _]) => max_dist_sq_body(lo, hi, p),
        (lo @ [_, _, _, _], hi @ [_, _, _, _], p @ [_, _, _, _]) => max_dist_sq_body(lo, hi, p),
        _ => max_dist_sq_body(lo, hi, p),
    }
}

/// `distmin(r, p)`.
#[inline]
pub fn min_dist(r: &HyperRect, p: &Point) -> f64 {
    min_dist_sq(r, p).sqrt()
}

/// `distmax(r, p)`.
#[inline]
pub fn max_dist(r: &HyperRect, p: &Point) -> f64 {
    max_dist_sq(r, p).sqrt()
}

/// Squared minimum distance between two rectangles (`0` when they intersect).
#[inline]
pub fn min_dist_sq_rr(a: &HyperRect, b: &HyperRect) -> f64 {
    debug_assert_eq!(a.dim(), b.dim());
    let mut acc = 0.0;
    for (((&alo, &ahi), &blo), &bhi) in a.lo().iter().zip(a.hi()).zip(b.lo()).zip(b.hi()) {
        let gap = (blo - ahi).max(alo - bhi);
        if gap > 0.0 {
            acc += sq(gap);
        }
    }
    acc
}

/// Squared maximum distance between two rectangles: the largest distance
/// between any point of `a` and any point of `b` (farthest corner pair;
/// separable per dimension).
#[inline]
pub fn max_dist_sq_rr(a: &HyperRect, b: &HyperRect) -> f64 {
    debug_assert_eq!(a.dim(), b.dim());
    let mut acc = 0.0;
    for (((&alo, &ahi), &blo), &bhi) in a.lo().iter().zip(a.hi()).zip(b.lo()).zip(b.hi()) {
        let w = (bhi - alo).abs().max((ahi - blo).abs());
        acc += sq(w);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[f64], hi: &[f64]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn point_rect_distances() {
        let a = r(&[0.0, 0.0], &[2.0, 2.0]);
        let inside = Point::new(vec![1.0, 1.0]);
        let outside = Point::new(vec![5.0, 2.0]);
        assert_eq!(min_dist_sq(&a, &inside), 0.0);
        // farthest corner from (1,1) is any corner: dist^2 = 2
        assert!((max_dist_sq(&a, &inside) - 2.0).abs() < 1e-12);
        assert_eq!(min_dist_sq(&a, &outside), 9.0);
        // farthest corner from (5,2) is (0,0): 25+4
        assert_eq!(max_dist_sq(&a, &outside), 29.0);
    }

    #[test]
    fn rect_rect_distances() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[3.0, 0.0], &[4.0, 1.0]);
        assert_eq!(min_dist_sq_rr(&a, &b), 4.0);
        // farthest pair: (0,0)..(4,1) or (0,1)..(4,0) -> 16+1
        assert_eq!(max_dist_sq_rr(&a, &b), 17.0);
        let c = r(&[0.5, 0.5], &[2.0, 2.0]);
        assert_eq!(min_dist_sq_rr(&a, &c), 0.0);
    }

    #[test]
    fn degenerate_rect_is_point() {
        let p = Point::new(vec![1.0, 2.0]);
        let pr = HyperRect::from_point(&p);
        let q = Point::new(vec![4.0, 6.0]);
        assert_eq!(min_dist_sq(&pr, &q), 25.0);
        assert_eq!(max_dist_sq(&pr, &q), 25.0);
    }

    #[test]
    fn specialized_dispatch_is_bit_identical_to_generic() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        // The generic loop, spelled out once more so the test does not depend
        // on the dispatch under test.
        fn generic_min(r: &HyperRect, p: &Point) -> f64 {
            let mut acc = 0.0;
            for j in 0..r.dim() {
                let c = p[j];
                if c < r.lo()[j] {
                    acc += sq(r.lo()[j] - c);
                } else if c > r.hi()[j] {
                    acc += sq(c - r.hi()[j]);
                }
            }
            acc
        }
        fn generic_max(r: &HyperRect, p: &Point) -> f64 {
            let mut acc = 0.0;
            for j in 0..r.dim() {
                let c = p[j];
                acc += sq((c - r.lo()[j]).abs().max((r.hi()[j] - c).abs()));
            }
            acc
        }
        let mut rng = StdRng::seed_from_u64(7);
        for d in 1..=5usize {
            for _ in 0..200 {
                let lo: Vec<f64> = (0..d).map(|_| rng.gen_range(-50.0..50.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.0..30.0)).collect();
                let rect = HyperRect::new(lo, hi);
                let p = Point::new((0..d).map(|_| rng.gen_range(-80.0..80.0)).collect());
                assert_eq!(
                    min_dist_sq(&rect, &p).to_bits(),
                    generic_min(&rect, &p).to_bits()
                );
                assert_eq!(
                    max_dist_sq(&rect, &p).to_bits(),
                    generic_max(&rect, &p).to_bits()
                );
            }
        }
    }

    #[test]
    fn brute_force_agreement() {
        // Compare analytic min/max dist against dense sampling of the rect.
        let a = r(&[-1.0, 2.0, 0.0], &[3.0, 5.0, 0.5]);
        let p = Point::new(vec![4.0, 0.0, -2.0]);
        let mut bf_min = f64::INFINITY;
        let mut bf_max: f64 = 0.0;
        let steps = 12;
        for i in 0..=steps {
            for j in 0..=steps {
                for k in 0..=steps {
                    let s = Point::new(vec![
                        -1.0 + 4.0 * i as f64 / steps as f64,
                        2.0 + 3.0 * j as f64 / steps as f64,
                        0.5 * k as f64 / steps as f64,
                    ]);
                    let d = s.dist_sq(&p);
                    bf_min = bf_min.min(d);
                    bf_max = bf_max.max(d);
                }
            }
        }
        assert!(min_dist_sq(&a, &p) <= bf_min + 1e-9);
        assert!(max_dist_sq(&a, &p) >= bf_max - 1e-9);
        // corners are part of the sample grid, so max must agree exactly
        assert!((max_dist_sq(&a, &p) - bf_max).abs() < 1e-9);
    }
}
