//! d-dimensional points.

use std::fmt;
use std::ops::{Deref, Index, IndexMut};

/// A point in `R^d`.
///
/// Dimensionality is dynamic (chosen at run time, as in the paper's
/// experiments which sweep `d` from 2 to 5). The coordinates are stored in a
/// boxed slice to keep the type two words wide.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from a coordinate vector.
    pub fn new(coords: Vec<f64>) -> Self {
        debug_assert!(!coords.is_empty(), "zero-dimensional points are invalid");
        Self {
            coords: coords.into_boxed_slice(),
        }
    }

    /// Creates the origin of `R^dim`.
    pub fn zeros(dim: usize) -> Self {
        Self::new(vec![0.0; dim])
    }

    /// Creates a point with every coordinate equal to `v`.
    pub fn splat(dim: usize, v: f64) -> Self {
        Self::new(vec![v; dim])
    }

    /// Number of dimensions.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Mutable coordinate slice.
    #[inline]
    pub fn coords_mut(&mut self) -> &mut [f64] {
        &mut self.coords
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Component-wise midpoint between two points.
    pub fn midpoint(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dim(), other.dim());
        Point::new(
            self.coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| 0.5 * (a + b))
                .collect(),
        )
    }

    /// Returns `self + t * (other - self)`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        debug_assert_eq!(self.dim(), other.dim());
        Point::new(
            self.coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a + t * (b - a))
                .collect(),
        )
    }
}

impl Deref for Point {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.coords
    }
}

impl Index<usize> for Point {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl IndexMut<usize> for Point {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Point::new(v)
    }
}

impl From<&[f64]> for Point {
    fn from(v: &[f64]) -> Self {
        Point::new(v.to_vec())
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(vec![0.0, 2.0]);
        let b = Point::new(vec![4.0, 6.0]);
        assert_eq!(a.midpoint(&b).coords(), &[2.0, 4.0]);
        assert_eq!(a.lerp(&b, 0.25).coords(), &[1.0, 3.0]);
        assert_eq!(a.lerp(&b, 1.0).coords(), b.coords());
    }

    #[test]
    fn splat_and_zeros() {
        assert_eq!(Point::zeros(3).coords(), &[0.0, 0.0, 0.0]);
        assert_eq!(Point::splat(2, 7.5).coords(), &[7.5, 7.5]);
    }
}
