//! Bisector ("hyperplane `H_{a,b}`") utilities.
//!
//! Equation (1) of the paper defines, for two uncertain objects `a` and `b`,
//! the surface `H_{a,b} = { p : distmax(a, p) = distmin(b, p) }`, which
//! separates the dominated region `dom(a, b)` from `¬dom(a, b)`. Computing
//! the surface explicitly is exactly what the paper avoids; this module only
//! provides the *side* classification, which is cheap and exact, and is used
//! by tests, the naive verifier and the examples.

use crate::{max_dist_sq, min_dist_sq, HyperRect, Point};

/// Which side of the bisector `H_{a,b}` a point lies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BisectorSide {
    /// `distmax(a,p) < distmin(b,p)`: `p ∈ dom(a,b)` — `b` can never be the
    /// NN of `p` while `a` exists.
    Dominated,
    /// `distmax(a,p) = distmin(b,p)` (within `eps`): `p` lies on `H_{a,b}`.
    OnBoundary,
    /// `distmax(a,p) > distmin(b,p)`: `p ∈ ¬dom(a,b)` — `b` may still be
    /// closer to `p` than `a`.
    NotDominated,
}

/// Classifies `p` against the bisector of `(a, b)`.
///
/// `eps` is an absolute tolerance on the *squared* distance difference used
/// to report boundary hits; pass `0.0` for strict classification.
pub fn bisector_side(a: &HyperRect, b: &HyperRect, p: &Point, eps: f64) -> BisectorSide {
    let diff = max_dist_sq(a, p) - min_dist_sq(b, p);
    if diff.abs() <= eps {
        BisectorSide::OnBoundary
    } else if diff < 0.0 {
        BisectorSide::Dominated
    } else {
        BisectorSide::NotDominated
    }
}

/// Finds (by bisection along the segment `p0 → p1`) a point approximately on
/// `H_{a,b}`, assuming `p0 ∈ dom(a,b)` and `p1 ∉ dom(a,b)`.
///
/// Returns `None` when the endpoints do not straddle the boundary. Used by
/// visualisation code and boundary tests.
pub fn bisector_bisection(
    a: &HyperRect,
    b: &HyperRect,
    p0: &Point,
    p1: &Point,
    iters: usize,
) -> Option<Point> {
    let side0 = bisector_side(a, b, p0, 0.0);
    let side1 = bisector_side(a, b, p1, 0.0);
    if side0 == side1 {
        return None;
    }
    let (mut lo, mut hi) = match (side0, side1) {
        (BisectorSide::Dominated, _) => (p0.clone(), p1.clone()),
        (_, BisectorSide::Dominated) => (p1.clone(), p0.clone()),
        _ => return Some(p0.clone()), // one endpoint already on the boundary
    };
    for _ in 0..iters {
        let mid = lo.midpoint(&hi);
        match bisector_side(a, b, &mid, 0.0) {
            BisectorSide::Dominated => lo = mid,
            BisectorSide::NotDominated => hi = mid,
            BisectorSide::OnBoundary => return Some(mid),
        }
    }
    Some(lo.midpoint(&hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[f64], hi: &[f64]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec())
    }

    #[test]
    fn sides_for_point_objects() {
        // Two point objects at 0 and 10 on a line: the bisector is x = 5.
        let a = r(&[0.0], &[0.0]);
        let b = r(&[10.0], &[10.0]);
        assert_eq!(
            bisector_side(&a, &b, &Point::new(vec![2.0]), 0.0),
            BisectorSide::Dominated
        );
        assert_eq!(
            bisector_side(&a, &b, &Point::new(vec![5.0]), 1e-12),
            BisectorSide::OnBoundary
        );
        assert_eq!(
            bisector_side(&a, &b, &Point::new(vec![8.0]), 0.0),
            BisectorSide::NotDominated
        );
    }

    #[test]
    fn bisection_finds_boundary() {
        let a = r(&[0.0, 0.0], &[1.0, 1.0]);
        let b = r(&[8.0, 0.0], &[9.0, 1.0]);
        let p0 = Point::new(vec![1.5, 0.5]); // near a: dominated
        let p1 = Point::new(vec![7.5, 0.5]); // near b: not dominated
        let hit = bisector_bisection(&a, &b, &p0, &p1, 60).unwrap();
        assert_eq!(
            bisector_side(&a, &b, &hit, 1e-6),
            BisectorSide::OnBoundary,
            "hit = {hit:?}"
        );
    }

    #[test]
    fn bisection_requires_straddle() {
        let a = r(&[0.0], &[1.0]);
        let b = r(&[10.0], &[11.0]);
        let p0 = Point::new(vec![0.5]);
        let p1 = Point::new(vec![1.0]);
        assert!(bisector_bisection(&a, &b, &p0, &p1, 10).is_none());
    }

    #[test]
    fn uncertainty_shifts_boundary_toward_a() {
        // With a rectangular `a` (not a point) the bisector uses distmax from
        // a's far corner, pulling the crossover toward `a`: here `a = [0,2]`,
        // `b = {10}` in 1-D, so the balance point solves p − 0 = 10 − p,
        // i.e. p = 5 — left of the centre midpoint 5.5.
        let a = r(&[0.0], &[2.0]);
        let b = r(&[10.0], &[10.0]);
        let mut x = 0.0;
        while x < 10.0 {
            if bisector_side(&a, &b, &Point::new(vec![x]), 0.0) == BisectorSide::NotDominated {
                break;
            }
            x += 0.01;
        }
        assert!((x - 5.0).abs() < 0.05, "crossover at {x}");
    }
}
