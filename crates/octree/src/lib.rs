//! # pv-octree — the PV-index's primary index structure
//!
//! §VI-A of the paper describes the primary index: a multi-dimensional
//! octree whose non-leaf nodes each point to `2^d` children covering equal
//! fractions of the parent region, with child regions derived (never stored);
//! leaf nodes store, for every object whose UBR overlaps the leaf region, the
//! object id and its uncertainty region. Non-leaf nodes live in main memory;
//! each leaf is a linked list of disk pages.
//!
//! This crate implements exactly that structure for arbitrary dimensionality
//! (a quad-tree at `d = 2`, octree at `d = 3`, …):
//!
//! * child regions are derived from the parent on the fly — they are never
//!   stored (as in the paper);
//! * leaves are [`pv_storage::PageList`] chains on the simulated disk;
//! * non-leaf nodes consume a **main-memory budget** `M`; once the budget is
//!   exhausted, full leaves grow by chaining additional pages instead of
//!   splitting (§VI-A construction step 3);
//! * insertion requires a *UBR lookup* callback, because a leaf split must
//!   re-route the resident objects by their UBRs, which live in the
//!   secondary index (§VI-A step 3 re-inserts the UBRs of the objects that
//!   the overflowing leaf contained).
//!
//! Leaf records are opaque byte strings whose first 8 bytes must be the
//! object id; the rest is up to the caller (the PV-index stores the
//! uncertainty region `u(o)` there).

#![deny(missing_docs)]

use pv_geom::{HyperRect, Point};
use pv_storage::{codec, PageId, PageList, Pager};
use std::sync::Arc;

/// Per-node main-memory cost model (bytes) used against the budget `M`.
///
/// A non-leaf node stores `2^d` child pointers (8 bytes each) plus a small
/// header; a leaf stores its head page id, entry count and header. This
/// mirrors the paper's `⌈M/2^{d+2}⌉·(1+2^d)` node-count bound.
fn internal_node_cost(dim: usize) -> usize {
    16 + (1 << dim) * 8
}
fn leaf_node_cost() -> usize {
    32
}

#[derive(Debug, Clone)]
enum ONode {
    /// Child arena indices, one per octant (always exactly `2^d`).
    Internal(Vec<u32>),
    Leaf {
        list: PageList,
        entries: u32,
    },
}

/// Aggregate shape / occupancy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OctreeStats {
    /// Number of internal nodes (resident in main memory).
    pub internal_nodes: usize,
    /// Number of leaf nodes.
    pub leaf_nodes: usize,
    /// Total leaf records (an object appears once per overlapped leaf).
    pub leaf_records: usize,
    /// Main-memory bytes consumed by the node arena.
    pub mem_used: usize,
    /// Tree depth (root = 1).
    pub depth: usize,
}

/// Reusable buffers for [`Octree::point_query_with`]: the descent's cell
/// bounds plus a page buffer for the leaf chain. Keep one per query thread
/// and the whole Step-1 lookup runs without heap allocation.
#[derive(Debug, Default, Clone)]
pub struct PointQueryScratch {
    lo: Vec<f64>,
    hi: Vec<f64>,
    page: Vec<u8>,
}

/// A `2^d`-ary space-partitioning tree with disk-resident leaves.
///
/// The node arena holds one `Arc` per node so [`Octree::fork`] can share the
/// whole structure with a sibling tree; a fork's mutations clone only the
/// nodes along the mutated path ([`Arc::make_mut`]) and leave every untouched
/// subtree physically shared.
pub struct Octree<P: Pager> {
    pager: P,
    domain: HyperRect,
    dim: usize,
    nodes: Vec<Arc<ONode>>,
    root: u32,
    mem_budget: usize,
    mem_used: usize,
    /// Maximum records in a leaf before a split is attempted. Derived from
    /// the page size and a representative record length at construction.
    split_threshold: usize,
}

impl<P: Pager> std::fmt::Debug for Octree<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Octree")
            .field("dim", &self.dim)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl<P: Pager> Octree<P> {
    /// Creates an empty tree over `domain` with a main-memory budget of
    /// `mem_budget` bytes for nodes (the paper uses 5 MB).
    ///
    /// `record_len_hint` is the typical leaf record length in bytes; it
    /// determines how many records fit a page and therefore when a leaf is
    /// considered full.
    pub fn new(pager: P, domain: HyperRect, mem_budget: usize, record_len_hint: usize) -> Self {
        let dim = domain.dim();
        let payload = pager.page_size() - 10; // PageList header
        let per_record = record_len_hint + 2; // record length prefix
        let split_threshold = (payload / per_record).max(2);
        let mut tree = Self {
            pager,
            domain,
            dim,
            nodes: Vec::new(),
            root: 0,
            mem_budget,
            mem_used: 0,
            split_threshold,
        };
        tree.root = tree.alloc_leaf();
        tree
    }

    fn alloc_leaf(&mut self) -> u32 {
        self.mem_used += leaf_node_cost();
        let id = self.nodes.len() as u32;
        self.nodes.push(Arc::new(ONode::Leaf {
            list: PageList::new(),
            entries: 0,
        }));
        id
    }

    /// Forks the tree onto `pager` — typically a copy-on-write fork of this
    /// tree's device (see [`pv_storage::MemPager::fork`]). The node arena is
    /// shared per-node: the fork clones only `Arc` pointers here, and later
    /// mutations on either side copy just the nodes along the mutated path.
    pub fn fork(&self, pager: P) -> Self {
        Self {
            pager,
            domain: self.domain.clone(),
            dim: self.dim,
            nodes: self.nodes.clone(),
            root: self.root,
            mem_budget: self.mem_budget,
            mem_used: self.mem_used,
            split_threshold: self.split_threshold,
        }
    }

    /// Domain covered by the tree.
    pub fn domain(&self) -> &HyperRect {
        &self.domain
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Main-memory bytes currently used by nodes.
    pub fn mem_used(&self) -> usize {
        self.mem_used
    }

    /// True when the budget still allows converting a leaf into an internal
    /// node with `2^d` fresh leaves.
    fn can_split(&self) -> bool {
        let extra =
            internal_node_cost(self.dim) - leaf_node_cost() + (1 << self.dim) * leaf_node_cost();
        self.mem_used + extra <= self.mem_budget
    }

    /// Inserts an object: `ubr` decides which leaves hold the record;
    /// `record` is the leaf payload (first 8 bytes = object id);
    /// `ubr_lookup` resolves object id → UBR during leaf splits.
    pub fn insert(
        &mut self,
        ubr: &HyperRect,
        record: &[u8],
        ubr_lookup: &dyn Fn(u64) -> HyperRect,
    ) {
        debug_assert_eq!(ubr.dim(), self.dim);
        debug_assert!(record.len() >= 8, "record must start with the object id");
        self.insert_rec(self.root, self.domain.clone(), ubr, record, ubr_lookup, 0);
    }

    fn insert_rec(
        &mut self,
        node: u32,
        region: HyperRect,
        ubr: &HyperRect,
        record: &[u8],
        ubr_lookup: &dyn Fn(u64) -> HyperRect,
        depth: usize,
    ) {
        match self.nodes[node as usize].as_ref() {
            ONode::Internal(children) => {
                let children = children.clone();
                for (i, child_region) in region.octants().into_iter().enumerate() {
                    if child_region.intersects(ubr) {
                        self.insert_rec(
                            children[i],
                            child_region,
                            ubr,
                            record,
                            ubr_lookup,
                            depth + 1,
                        );
                    }
                }
            }
            ONode::Leaf { .. } => {
                self.leaf_insert(node, region, record, ubr_lookup, depth);
            }
        }
    }

    fn leaf_insert(
        &mut self,
        node: u32,
        region: HyperRect,
        record: &[u8],
        ubr_lookup: &dyn Fn(u64) -> HyperRect,
        depth: usize,
    ) {
        let entries = match self.nodes[node as usize].as_ref() {
            ONode::Leaf { entries, .. } => *entries,
            ONode::Internal(_) => unreachable!(),
        };
        // Paper step 2/3: if the leaf is full, either split (if main memory
        // allows) or chain a page — `PageList::append` chains automatically,
        // so the only decision made here is the split. The depth guard stops
        // subdividing once cells approach float resolution.
        let mut should_split =
            entries as usize >= self.split_threshold && self.can_split() && depth < 40;
        if should_split {
            // Splitting can only resolve the overflow if the records that
            // would land in *every* child — those whose UBR contains the
            // split point (the octants' shared corner) — fit in a leaf by
            // themselves. Otherwise every descendant inherits the full
            // overflow and the redistribution recursion cascades towards the
            // depth cap (each level copying the core into 2^d children).
            // That happens under deletion storms, where deferred maintenance
            // leaves many catalog UBRs temporarily loose; chaining pages
            // keeps those leaves flat until `maintain` re-tightens the boxes
            // and `remove_delta` shrinks the chains back.
            let center = region.center();
            let core = {
                let list = match self.nodes[node as usize].as_ref() {
                    ONode::Leaf { list, .. } => list,
                    ONode::Internal(_) => unreachable!(),
                };
                let mut core = 0usize;
                list.for_each_record(&self.pager, &mut Vec::new(), |rec: &[u8]| {
                    let id = u64::from_le_bytes(rec[0..8].try_into().expect("record has id"));
                    if ubr_lookup(id).contains_point(&center) {
                        core += 1;
                    }
                });
                core
            };
            should_split = core < self.split_threshold;
        }
        if !should_split {
            match Arc::make_mut(&mut self.nodes[node as usize]) {
                ONode::Leaf { list, entries } => {
                    list.append(&self.pager, record);
                    *entries += 1;
                }
                ONode::Internal(_) => unreachable!(),
            }
            return;
        }
        // Split: convert the leaf into an internal node with 2^d leaf
        // children and re-route all resident records by their UBRs.
        let old_records = match Arc::make_mut(&mut self.nodes[node as usize]) {
            ONode::Leaf { list, .. } => {
                let recs = list.read_all(&self.pager);
                list.clear(&self.pager);
                recs
            }
            ONode::Internal(_) => unreachable!(),
        };
        self.mem_used -= leaf_node_cost();
        self.mem_used += internal_node_cost(self.dim);
        let children: Vec<u32> = (0..(1 << self.dim)).map(|_| self.alloc_leaf()).collect();
        self.nodes[node as usize] = Arc::new(ONode::Internal(children.clone()));
        let child_regions = region.octants();
        for rec in old_records.iter().map(Vec::as_slice).chain([record]) {
            let id = u64::from_le_bytes(rec[0..8].try_into().expect("record has id"));
            let obj_ubr = ubr_lookup(id);
            for (i, child_region) in child_regions.iter().enumerate() {
                if child_region.intersects(&obj_ubr) {
                    self.leaf_insert(
                        children[i],
                        child_region.clone(),
                        rec,
                        ubr_lookup,
                        depth + 1,
                    );
                }
            }
        }
    }

    /// Point query: descends to the single leaf containing `q` and returns
    /// its records (the PV-index's Step-1 lookup). Page reads are charged to
    /// the pager's statistics.
    pub fn point_query(&self, q: &Point) -> Vec<Vec<u8>> {
        debug_assert!(self.domain.contains_point(q), "query outside the domain");
        let mut node = self.root;
        let mut region = self.domain.clone();
        loop {
            match self.nodes[node as usize].as_ref() {
                ONode::Internal(children) => {
                    let oct = region.octant_of(q);
                    node = children[oct];
                    region = region.octants().swap_remove(oct);
                }
                ONode::Leaf { list, .. } => return list.read_all(&self.pager),
            }
        }
    }

    /// Allocation-free [`Octree::point_query`]: descends with the cell bounds
    /// held in `scratch` (mutated in place instead of materialising child
    /// rectangles) and streams each leaf record to `sink` as a borrowed
    /// slice. Visits the same leaf, in the same record order, charging the
    /// same page reads; at steady state it performs no heap allocation.
    pub fn point_query_with(
        &self,
        q: &Point,
        scratch: &mut PointQueryScratch,
        sink: impl FnMut(&[u8]),
    ) {
        debug_assert!(self.domain.contains_point(q), "query outside the domain");
        scratch.lo.clear();
        scratch.lo.extend_from_slice(self.domain.lo());
        scratch.hi.clear();
        scratch.hi.extend_from_slice(self.domain.hi());
        let mut node = self.root;
        loop {
            // pv-lint: allow(hot-path-no-panic, reason = "node ids are produced by this tree's own Internal children arrays; a dangling id is construction-level corruption and must fail loudly")
            match self.nodes[node as usize].as_ref() {
                ONode::Internal(children) => {
                    // In-place equivalent of `octant_of` + `octants()[oct]`:
                    // same midpoints, same tie rule (ties go to the upper
                    // half).
                    let mut oct = 0usize;
                    for (j, ((l, h), &c)) in scratch
                        .lo
                        .iter_mut()
                        .zip(scratch.hi.iter_mut())
                        .zip(q.coords())
                        .enumerate()
                    {
                        let mid = 0.5 * (*l + *h);
                        if c >= mid {
                            oct |= 1 << j;
                            *l = mid;
                        } else {
                            *h = mid;
                        }
                    }
                    // pv-lint: allow(hot-path-no-panic, reason = "oct has dim bits and Internal children are 2^dim-long by construction")
                    node = children[oct];
                }
                ONode::Leaf { list, .. } => {
                    list.for_each_record(&self.pager, &mut scratch.page, sink);
                    return;
                }
            }
        }
    }

    /// Range query: returns the distinct records of every leaf whose region
    /// intersects `range`. Records are deduplicated by object id (an object
    /// may be registered in several leaves).
    pub fn range_query(&self, range: &HyperRect) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        self.range_rec(self.root, self.domain.clone(), range, &mut |rec| {
            let id = u64::from_le_bytes(rec[0..8].try_into().expect("record has id"));
            if seen.insert(id) {
                out.push(rec.to_vec());
            }
        });
        out
    }

    fn range_rec(
        &self,
        node: u32,
        region: HyperRect,
        range: &HyperRect,
        sink: &mut dyn FnMut(&[u8]),
    ) {
        match self.nodes[node as usize].as_ref() {
            ONode::Internal(children) => {
                for (i, child_region) in region.octants().into_iter().enumerate() {
                    if child_region.intersects(range) {
                        self.range_rec(children[i], child_region, range, sink);
                    }
                }
            }
            ONode::Leaf { list, .. } => {
                for rec in list.read_all(&self.pager) {
                    sink(&rec);
                }
            }
        }
    }

    /// Removes every record of `id` from leaves overlapping `ubr`.
    /// Returns the number of leaf records removed.
    pub fn remove(&mut self, ubr: &HyperRect, id: u64) -> usize {
        self.remove_rec(self.root, self.domain.clone(), ubr, id)
    }

    fn remove_rec(&mut self, node: u32, region: HyperRect, ubr: &HyperRect, id: u64) -> usize {
        match self.nodes[node as usize].as_ref() {
            ONode::Internal(children) => {
                let children = children.clone();
                let mut removed = 0;
                for (i, child_region) in region.octants().into_iter().enumerate() {
                    if child_region.intersects(ubr) {
                        removed += self.remove_rec(children[i], child_region, ubr, id);
                    }
                }
                removed
            }
            ONode::Leaf { .. } => match Arc::make_mut(&mut self.nodes[node as usize]) {
                ONode::Leaf { list, entries } => {
                    let removed = list.retain(&self.pager, |rec| {
                        u64::from_le_bytes(rec[0..8].try_into().expect("record has id")) != id
                    });
                    *entries -= removed as u32;
                    removed
                }
                ONode::Internal(_) => unreachable!(),
            },
        }
    }

    /// Registers each record in every leaf overlapping `cover` that does
    /// not already hold a record of the same id (dedup by scanning the
    /// leaf once for the whole batch).
    ///
    /// Unlike [`Octree::insert_delta`] this makes no assumption about where
    /// the records currently live, so a caller can extend objects' leaf
    /// coverage by an arbitrary rectangle. The deletion-maintenance path
    /// uses it to register all affected neighbours exactly where they can
    /// newly win — the removed object's UBR — instead of everywhere under
    /// the (potentially huge) bounding box of each neighbour's union, and
    /// in one traversal instead of one per neighbour.
    pub fn insert_covering(
        &mut self,
        cover: &HyperRect,
        records: &[&[u8]],
        ubr_lookup: &dyn Fn(u64) -> HyperRect,
    ) {
        self.insert_covering_rec(
            self.root,
            self.domain.clone(),
            cover,
            records,
            ubr_lookup,
            0,
        );
    }

    fn insert_covering_rec(
        &mut self,
        node: u32,
        region: HyperRect,
        cover: &HyperRect,
        records: &[&[u8]],
        ubr_lookup: &dyn Fn(u64) -> HyperRect,
        depth: usize,
    ) {
        match self.nodes[node as usize].as_ref() {
            ONode::Internal(children) => {
                let children = children.clone();
                for (i, child_region) in region.octants().into_iter().enumerate() {
                    if child_region.intersects(cover) {
                        self.insert_covering_rec(
                            children[i],
                            child_region,
                            cover,
                            records,
                            ubr_lookup,
                            depth + 1,
                        );
                    }
                }
            }
            ONode::Leaf { list, .. } => {
                fn rec_id(rec: &[u8]) -> u64 {
                    u64::from_le_bytes(rec[0..8].try_into().expect("record has id"))
                }
                let mut present: Vec<u64> = Vec::with_capacity(records.len());
                list.for_each_record(&self.pager, &mut Vec::new(), |rec: &[u8]| {
                    present.push(rec_id(rec));
                });
                for (i, record) in records.iter().enumerate() {
                    if present.contains(&rec_id(record)) {
                        continue;
                    }
                    // An insert can split the leaf; re-descend with the
                    // remaining batch (the dedup scan makes re-visiting the
                    // just-inserted record a no-op).
                    if matches!(self.nodes[node as usize].as_ref(), ONode::Internal(_)) {
                        self.insert_covering_rec(
                            node,
                            region,
                            cover,
                            &records[i..],
                            ubr_lookup,
                            depth,
                        );
                        return;
                    }
                    self.leaf_insert(node, region.clone(), record, ubr_lookup, depth);
                }
            }
        }
    }

    /// Registers a record in exactly the leaves overlapping `new_ubr` but not
    /// `old_ubr` (the `N' − N` set of the paper's incremental update). The
    /// caller guarantees the record is already present in leaves overlapping
    /// `old_ubr`.
    pub fn insert_delta(
        &mut self,
        old_ubr: &HyperRect,
        new_ubr: &HyperRect,
        record: &[u8],
        ubr_lookup: &dyn Fn(u64) -> HyperRect,
    ) {
        self.insert_delta_rec(
            self.root,
            self.domain.clone(),
            old_ubr,
            new_ubr,
            record,
            ubr_lookup,
            0,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_delta_rec(
        &mut self,
        node: u32,
        region: HyperRect,
        old_ubr: &HyperRect,
        new_ubr: &HyperRect,
        record: &[u8],
        ubr_lookup: &dyn Fn(u64) -> HyperRect,
        depth: usize,
    ) {
        match self.nodes[node as usize].as_ref() {
            ONode::Internal(children) => {
                let children = children.clone();
                for (i, child_region) in region.octants().into_iter().enumerate() {
                    if child_region.intersects(new_ubr) {
                        self.insert_delta_rec(
                            children[i],
                            child_region,
                            old_ubr,
                            new_ubr,
                            record,
                            ubr_lookup,
                            depth + 1,
                        );
                    }
                }
            }
            ONode::Leaf { .. } => {
                // A leaf already containing the record (region ∩ old ≠ ∅)
                // is skipped: N' − N.
                if !region.intersects(old_ubr) {
                    self.leaf_insert(node, region, record, ubr_lookup, depth);
                }
            }
        }
    }

    /// Removes the record of `id` from leaves overlapping `old_ubr` but not
    /// `new_ubr` (the `N − N'` set used when a PV-cell shrinks on insertion).
    pub fn remove_delta(&mut self, old_ubr: &HyperRect, new_ubr: &HyperRect, id: u64) -> usize {
        self.remove_delta_rec(self.root, self.domain.clone(), old_ubr, new_ubr, id)
    }

    fn remove_delta_rec(
        &mut self,
        node: u32,
        region: HyperRect,
        old_ubr: &HyperRect,
        new_ubr: &HyperRect,
        id: u64,
    ) -> usize {
        match self.nodes[node as usize].as_ref() {
            ONode::Internal(children) => {
                let children = children.clone();
                let mut removed = 0;
                for (i, child_region) in region.octants().into_iter().enumerate() {
                    if child_region.intersects(old_ubr) {
                        removed +=
                            self.remove_delta_rec(children[i], child_region, old_ubr, new_ubr, id);
                    }
                }
                removed
            }
            ONode::Leaf { .. } => {
                if region.intersects(new_ubr) {
                    return 0; // stays registered here
                }
                match Arc::make_mut(&mut self.nodes[node as usize]) {
                    ONode::Leaf { list, entries } => {
                        let removed = list.retain(&self.pager, |rec| {
                            u64::from_le_bytes(rec[0..8].try_into().expect("record has id")) != id
                        });
                        *entries -= removed as u32;
                        removed
                    }
                    ONode::Internal(_) => unreachable!(),
                }
            }
        }
    }

    /// Shape statistics (walks the arena; leaf record counts come from the
    /// in-memory counters, so no I/O is charged).
    pub fn stats(&self) -> OctreeStats {
        let mut st = OctreeStats {
            mem_used: self.mem_used,
            ..Default::default()
        };
        self.stats_rec(self.root, 1, &mut st);
        st
    }

    fn stats_rec(&self, node: u32, depth: usize, st: &mut OctreeStats) {
        st.depth = st.depth.max(depth);
        match self.nodes[node as usize].as_ref() {
            ONode::Internal(children) => {
                st.internal_nodes += 1;
                for &c in children {
                    self.stats_rec(c, depth + 1, st);
                }
            }
            ONode::Leaf { entries, .. } => {
                st.leaf_nodes += 1;
                st.leaf_records += *entries as usize;
            }
        }
    }

    /// Access to the pager handle (for I/O statistics).
    pub fn pager(&self) -> &P {
        &self.pager
    }

    /// Bulk-loads a tree from a completed `(ubr, record)` catalog, replaying
    /// the exact split/chain decision sequence of inserting the items one at
    /// a time — but entirely in memory, with leaf pages emitted once at the
    /// end ([`PageList::build_from_records`], one write per page).
    ///
    /// The resulting tree is *logically identical* to
    /// `items.iter().for_each(|(ubr, rec)| tree.insert(ubr, rec, …))` on an
    /// empty tree built with the same arguments: same arena (shape and
    /// numbering — splits allocate children at the same points of the
    /// sequence), same per-leaf records in the same chain order, same
    /// `mem_used`. Only the physical page ids differ, because the
    /// incremental path allocates and frees transient pages during splits
    /// while the bulk path allocates each final page exactly once. The
    /// PV-index's canonical snapshot re-emission erases that difference.
    ///
    /// Records resolve their own UBRs positionally — the UBR paired with a
    /// record is what split re-routing uses — so no lookup callback is
    /// needed; the catalog must be complete before loading.
    pub fn bulk_load(
        pager: P,
        domain: HyperRect,
        mem_budget: usize,
        record_len_hint: usize,
        items: &[(HyperRect, Vec<u8>)],
    ) -> Self {
        let dim = domain.dim();
        let payload = pager.page_size() - 10; // PageList header
        let per_record = record_len_hint + 2; // record length prefix
        let split_threshold = (payload / per_record).max(2);
        let mut b = BulkBuilder {
            dim,
            page_payload: PageList::page_payload(&pager),
            mem_budget,
            mem_used: 0,
            split_threshold,
            nodes: Vec::new(),
            items,
        };
        let root = b.alloc_leaf();
        for (i, item) in items.iter().enumerate() {
            debug_assert_eq!(item.0.dim(), dim);
            debug_assert!(item.1.len() >= 8, "record must start with the object id");
            b.route(root, domain.clone(), i as u32, 0);
        }
        let nodes = b
            .nodes
            .iter()
            .map(|node| match node {
                BuildNode::Internal(children) => Arc::new(ONode::Internal(children.clone())),
                BuildNode::Leaf {
                    groups, entries, ..
                } => {
                    let list = PageList::build_from_records(
                        &pager,
                        groups
                            .iter()
                            .flatten()
                            .map(|&r| items[r as usize].1.as_slice()),
                    );
                    Arc::new(ONode::Leaf {
                        list,
                        entries: *entries,
                    })
                }
            })
            .collect();
        Self {
            pager,
            domain,
            dim,
            nodes,
            root,
            mem_budget,
            mem_used: b.mem_used,
            split_threshold,
        }
    }

    /// Re-emits every leaf chain onto `pager` in a canonical, history-free
    /// form: leaves are visited in arena order, their records sorted by
    /// object id, and each chain written with one write per page. The arena
    /// itself (shape, numbering, budgets) carries over unchanged.
    ///
    /// Two trees holding identical logical content — whatever
    /// insert/split/chain history produced their pages — re-emit identical
    /// page images in an identical allocation order, which is what makes
    /// PV-index snapshots canonical.
    pub fn reemit_canonical<Q: Pager>(&self, pager: Q) -> Octree<Q> {
        let nodes = self
            .nodes
            .iter()
            .map(|node| match node.as_ref() {
                ONode::Internal(children) => Arc::new(ONode::Internal(children.clone())),
                ONode::Leaf { list, entries } => {
                    let mut recs = list.read_all(&self.pager);
                    recs.sort_by_key(|r| {
                        u64::from_le_bytes(r[0..8].try_into().expect("record has id"))
                    });
                    let list = PageList::build_from_records(&pager, recs.iter().map(Vec::as_slice));
                    Arc::new(ONode::Leaf {
                        list,
                        entries: *entries,
                    })
                }
            })
            .collect();
        Octree {
            pager,
            domain: self.domain.clone(),
            dim: self.dim,
            nodes,
            root: self.root,
            mem_budget: self.mem_budget,
            mem_used: self.mem_used,
            split_threshold: self.split_threshold,
        }
    }

    /// Serialises the tree's in-memory state — domain, budgets, and the
    /// node arena with its leaf-chain head page ids — for an index
    /// snapshot. The leaf *pages* are not included: they belong to the
    /// pager, whose image is snapshotted separately by the caller.
    pub fn to_snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_u16(&mut out, self.dim as u16);
        for &x in self.domain.lo() {
            codec::put_f64(&mut out, x);
        }
        for &x in self.domain.hi() {
            codec::put_f64(&mut out, x);
        }
        codec::put_u32(&mut out, self.root);
        codec::put_u64(&mut out, self.mem_budget as u64);
        codec::put_u64(&mut out, self.mem_used as u64);
        codec::put_u32(&mut out, self.split_threshold as u32);
        codec::put_u32(&mut out, self.nodes.len() as u32);
        for node in &self.nodes {
            match node.as_ref() {
                ONode::Internal(children) => {
                    codec::put_u16(&mut out, 0);
                    for &c in children {
                        codec::put_u32(&mut out, c);
                    }
                }
                ONode::Leaf { list, entries } => {
                    codec::put_u16(&mut out, 1);
                    codec::put_u64(&mut out, list.head().0);
                    codec::put_u32(&mut out, *entries);
                }
            }
        }
        out
    }

    /// Rebuilds a tree handle from [`Octree::to_snapshot`] bytes over a
    /// pager already holding the corresponding leaf pages.
    ///
    /// # Errors
    /// Truncated buffers, unknown node tags and out-of-range references are
    /// reported as [`codec::DecodeError`] — never a panic — so snapshot
    /// corruption surfaces cleanly.
    pub fn from_snapshot(pager: P, buf: &[u8]) -> Result<Self, codec::DecodeError> {
        let invalid = |context: &'static str| codec::DecodeError::Invalid { context };
        let mut r = codec::Reader::new(buf);
        let dim = r.try_u16()? as usize;
        if dim == 0 || dim > 16 {
            return Err(invalid("octree snapshot dimensionality"));
        }
        let lo: Vec<f64> = (0..dim).map(|_| r.try_f64()).collect::<Result<_, _>>()?;
        let hi: Vec<f64> = (0..dim).map(|_| r.try_f64()).collect::<Result<_, _>>()?;
        let domain = HyperRect::new(lo, hi);
        let root = r.try_u32()?;
        let mem_budget = r.try_u64()? as usize;
        let mem_used = r.try_u64()? as usize;
        let split_threshold = r.try_u32()? as usize;
        let n_nodes = r.try_u32()? as usize;
        let mut nodes = Vec::with_capacity(n_nodes.min(1 << 20));
        for i in 0..n_nodes {
            match r.try_u16()? {
                0 => {
                    let children: Vec<u32> = (0..(1usize << dim))
                        .map(|_| r.try_u32())
                        .collect::<Result<_, _>>()?;
                    // Split order appends children after their parent, so in
                    // any legitimate arena every child index exceeds its
                    // parent's; enforcing that also rejects all cycles, which
                    // would otherwise hang queries on a corrupt snapshot.
                    if children
                        .iter()
                        .any(|&c| c as usize >= n_nodes || c as usize <= i)
                    {
                        return Err(invalid("octree snapshot child index"));
                    }
                    nodes.push(Arc::new(ONode::Internal(children)));
                }
                1 => {
                    let head = PageId(r.try_u64()?);
                    let entries = r.try_u32()?;
                    nodes.push(Arc::new(ONode::Leaf {
                        list: PageList::from_head(head),
                        entries,
                    }));
                }
                t => {
                    return Err(codec::DecodeError::UnknownTag {
                        context: "octree snapshot node",
                        tag: t,
                    })
                }
            }
        }
        if root as usize >= nodes.len() {
            return Err(invalid("octree snapshot root index"));
        }
        if split_threshold == 0 {
            return Err(invalid("octree snapshot split threshold"));
        }
        Ok(Self {
            pager,
            domain,
            dim,
            nodes,
            root,
            mem_budget,
            mem_used,
            split_threshold,
        })
    }
}

/// In-memory node used by [`Octree::bulk_load`]'s insertion replay.
///
/// A leaf models its future page chain as chronological first-fit *groups*
/// of record indices — exactly the grouping [`PageList::append`] would
/// produce — because the split decision sequence observes records in chain
/// read order (newest group first), and reproducing that order is what
/// makes the replay bit-faithful to incremental insertion.
enum BuildNode {
    Internal(Vec<u32>),
    Leaf {
        /// Page groups, oldest first; the chain head is the *last* group.
        groups: Vec<Vec<u32>>,
        /// Payload bytes used by the newest (last) group.
        tail_used: usize,
        entries: u32,
    },
}

struct BulkBuilder<'a> {
    dim: usize,
    /// Per-page payload capacity ([`PageList::page_payload`]).
    page_payload: usize,
    mem_budget: usize,
    mem_used: usize,
    split_threshold: usize,
    nodes: Vec<BuildNode>,
    items: &'a [(HyperRect, Vec<u8>)],
}

impl BulkBuilder<'_> {
    fn alloc_leaf(&mut self) -> u32 {
        self.mem_used += leaf_node_cost();
        let id = self.nodes.len() as u32;
        self.nodes.push(BuildNode::Leaf {
            groups: Vec::new(),
            tail_used: 0,
            entries: 0,
        });
        id
    }

    fn can_split(&self) -> bool {
        let extra =
            internal_node_cost(self.dim) - leaf_node_cost() + (1 << self.dim) * leaf_node_cost();
        self.mem_used + extra <= self.mem_budget
    }

    /// Record indices in chain read order: newest group first, in-group
    /// records in append order (mirrors [`PageList::read_all`]).
    fn read_order(groups: &[Vec<u32>]) -> impl Iterator<Item = u32> + '_ {
        groups.iter().rev().flatten().copied()
    }

    /// Mirrors `Octree::insert_rec`: descend to every leaf whose region
    /// intersects the item's UBR.
    fn route(&mut self, node: u32, region: HyperRect, item: u32, depth: usize) {
        match &self.nodes[node as usize] {
            BuildNode::Internal(children) => {
                let children = children.clone();
                let ubr = &self.items[item as usize].0;
                for (i, child_region) in region.octants().into_iter().enumerate() {
                    if child_region.intersects(ubr) {
                        self.route(children[i], child_region, item, depth + 1);
                    }
                }
            }
            BuildNode::Leaf { .. } => self.leaf_insert(node, region, item, depth),
        }
    }

    /// Mirrors `Octree::leaf_insert` decision for decision: threshold and
    /// budget checks, the core-record split veto, chain-order re-routing.
    fn leaf_insert(&mut self, node: u32, region: HyperRect, item: u32, depth: usize) {
        let entries = match &self.nodes[node as usize] {
            BuildNode::Leaf { entries, .. } => *entries,
            BuildNode::Internal(_) => unreachable!(),
        };
        let mut should_split =
            entries as usize >= self.split_threshold && self.can_split() && depth < 40;
        if should_split {
            let center = region.center();
            let core = match &self.nodes[node as usize] {
                BuildNode::Leaf { groups, .. } => Self::read_order(groups)
                    .filter(|&r| self.items[r as usize].0.contains_point(&center))
                    .count(),
                BuildNode::Internal(_) => unreachable!(),
            };
            should_split = core < self.split_threshold;
        }
        if !should_split {
            let len = self.items[item as usize].1.len();
            let payload = self.page_payload;
            match &mut self.nodes[node as usize] {
                BuildNode::Leaf {
                    groups,
                    tail_used,
                    entries,
                } => {
                    // First-fit append, as `PageList::append` would group it.
                    if !groups.is_empty() && PageList::RECORD_OVERHEAD + len <= payload - *tail_used
                    {
                        groups.last_mut().expect("non-empty").push(item);
                        *tail_used += PageList::RECORD_OVERHEAD + len;
                    } else {
                        groups.push(vec![item]);
                        *tail_used = PageList::RECORD_OVERHEAD + len;
                    }
                    *entries += 1;
                }
                BuildNode::Internal(_) => unreachable!(),
            }
            return;
        }
        // Split: same child allocation order and the same (chain read order
        // + the incoming record last) re-routing sequence as the
        // incremental path.
        let old_records: Vec<u32> = match &self.nodes[node as usize] {
            BuildNode::Leaf { groups, .. } => Self::read_order(groups).collect(),
            BuildNode::Internal(_) => unreachable!(),
        };
        self.mem_used -= leaf_node_cost();
        self.mem_used += internal_node_cost(self.dim);
        let children: Vec<u32> = (0..(1 << self.dim)).map(|_| self.alloc_leaf()).collect();
        self.nodes[node as usize] = BuildNode::Internal(children.clone());
        let child_regions = region.octants();
        for r in old_records.into_iter().chain([item]) {
            let ubr = self.items[r as usize].0.clone();
            for (i, child_region) in child_regions.iter().enumerate() {
                if child_region.intersects(&ubr) {
                    self.leaf_insert(children[i], child_region.clone(), r, depth + 1);
                }
            }
        }
    }
}

/// Helper for the standard leaf record format used by the PV-index:
/// `id: u64 | rect(lo..hi): f64 × 2d`.
pub fn encode_leaf_record(id: u64, rect: &HyperRect) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + rect.dim() * 16);
    codec::put_u64(&mut out, id);
    for &x in rect.lo() {
        codec::put_f64(&mut out, x);
    }
    for &x in rect.hi() {
        codec::put_f64(&mut out, x);
    }
    out
}

/// Decodes a record produced by [`encode_leaf_record`].
pub fn decode_leaf_record(rec: &[u8], dim: usize) -> (u64, HyperRect) {
    let mut r = codec::Reader::new(rec);
    let id = r.u64();
    let lo: Vec<f64> = (0..dim).map(|_| r.f64()).collect();
    let hi: Vec<f64> = (0..dim).map(|_| r.f64()).collect();
    (id, HyperRect::new(lo, hi))
}

/// Reads a leaf record's id plus the squared min/max distance between its
/// rectangle and `q`, straight from the record bytes — the allocation-free
/// Step-1 filter. Bit-identical to decoding the rectangle and calling
/// [`pv_geom::min_dist_sq`] / [`pv_geom::max_dist_sq`] (same per-dimension
/// accumulation order).
#[inline]
pub fn leaf_record_dists_sq(rec: &[u8], dim: usize, q: &Point) -> (u64, f64, f64) {
    debug_assert!(rec.len() >= 8 + dim * 16, "truncated leaf record");
    // Total chunk-splitting parse: a record shorter than the fixed layout
    // (storage corruption) yields an infinitely-far candidate — pruned by
    // Step 1 — instead of panicking mid-query. Well-formed records take the
    // exact same byte offsets and accumulation order as before.
    let Some((id8, body)) = rec.split_first_chunk::<8>() else {
        return (0, f64::INFINITY, f64::INFINITY);
    };
    let id = u64::from_le_bytes(*id8);
    let mut mind = 0.0;
    let mut maxd = 0.0;
    let lo_words = body.chunks_exact(8).take(dim);
    let hi_words = body.chunks_exact(8).skip(dim).take(dim);
    for ((lo_w, hi_w), &c) in lo_words.zip(hi_words).zip(q.coords()) {
        let lo = f64::from_le_bytes(word8(lo_w));
        let hi = f64::from_le_bytes(word8(hi_w));
        if c < lo {
            mind += pv_geom::sq(lo - c);
        } else if c > hi {
            mind += pv_geom::sq(c - hi);
        }
        maxd += pv_geom::sq((c - lo).abs().max((hi - c).abs()));
    }
    (id, mind, maxd)
}

/// Copies a `chunks_exact(8)` window into an array: the iterator guarantees
/// exactly 8 bytes, so the copy cannot length-mismatch.
#[inline(always)]
fn word8(w: &[u8]) -> [u8; 8] {
    let mut b = [0u8; 8];
    b.copy_from_slice(w);
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use pv_storage::MemPager;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn domain2d() -> HyperRect {
        HyperRect::cube(2, 0.0, 100.0)
    }

    fn mk_tree(mem: usize) -> Octree<MemPager> {
        Octree::new(MemPager::new(512), domain2d(), mem, 40)
    }

    /// Builds `n` random (id, ubr) pairs.
    fn random_objects(n: usize, seed: u64) -> Vec<(u64, HyperRect)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let lo: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..90.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.5..10.0)).collect();
                (i as u64, HyperRect::new(lo, hi))
            })
            .collect()
    }

    fn insert_all(tree: &mut Octree<MemPager>, objs: &[(u64, HyperRect)]) {
        let lookup_src: std::collections::HashMap<u64, HyperRect> = objs.iter().cloned().collect();
        let lookup = move |id: u64| lookup_src[&id].clone();
        for (id, ubr) in objs {
            tree.insert(ubr, &encode_leaf_record(*id, ubr), &lookup);
        }
    }

    #[test]
    fn leaf_record_dists_sq_matches_decoded_rectangle() {
        let mut rng = StdRng::seed_from_u64(4);
        for dim in [2usize, 3, 4] {
            for _ in 0..100 {
                let lo: Vec<f64> = (0..dim).map(|_| rng.gen_range(-40.0..40.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.0..25.0)).collect();
                let rect = HyperRect::new(lo, hi);
                let rec = encode_leaf_record(17, &rect);
                let q = Point::new((0..dim).map(|_| rng.gen_range(-60.0..60.0)).collect());
                let (id, mind, maxd) = leaf_record_dists_sq(&rec, dim, &q);
                assert_eq!(id, 17);
                assert_eq!(mind.to_bits(), pv_geom::min_dist_sq(&rect, &q).to_bits());
                assert_eq!(maxd.to_bits(), pv_geom::max_dist_sq(&rect, &q).to_bits());
            }
        }
    }

    #[test]
    fn point_query_with_matches_point_query() {
        let mut tree = mk_tree(1 << 20);
        let objs = random_objects(300, 9);
        insert_all(&mut tree, &objs);
        let mut rng = StdRng::seed_from_u64(31);
        let mut scratch = PointQueryScratch::default();
        for _ in 0..60 {
            let q = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
            let want = tree.point_query(&q);
            let mut got: Vec<Vec<u8>> = Vec::new();
            let r0 = tree.pager.stats().snapshot().reads;
            tree.point_query_with(&q, &mut scratch, |rec| got.push(rec.to_vec()));
            let reads = tree.pager.stats().snapshot().reads - r0;
            assert_eq!(got, want, "q = {q:?}");
            let r1 = tree.pager.stats().snapshot().reads;
            let _ = tree.point_query(&q);
            assert_eq!(tree.pager.stats().snapshot().reads - r1, reads);
        }
    }

    #[test]
    fn point_query_finds_overlapping_ubrs() {
        let mut tree = mk_tree(1 << 20);
        let objs = random_objects(300, 5);
        insert_all(&mut tree, &objs);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let q = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
            let got: std::collections::HashSet<u64> = tree
                .point_query(&q)
                .iter()
                .map(|r| decode_leaf_record(r, 2).0)
                .collect();
            // every object whose UBR contains q must be present
            for (id, ubr) in &objs {
                if ubr.contains_point(&q) {
                    assert!(got.contains(id), "object {id} missing at {q:?}");
                }
            }
        }
    }

    /// Structural equality: same arena (shape + numbering), same per-leaf
    /// records in the same chain read order, same accounting.
    fn assert_logically_equal(a: &Octree<MemPager>, b: &Octree<MemPager>) {
        assert_eq!(a.root, b.root);
        assert_eq!(a.mem_used, b.mem_used);
        assert_eq!(a.split_threshold, b.split_threshold);
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (i, (na, nb)) in a.nodes.iter().zip(&b.nodes).enumerate() {
            match (na.as_ref(), nb.as_ref()) {
                (ONode::Internal(ca), ONode::Internal(cb)) => assert_eq!(ca, cb, "node {i}"),
                (
                    ONode::Leaf {
                        list: la,
                        entries: ea,
                    },
                    ONode::Leaf {
                        list: lb,
                        entries: eb,
                    },
                ) => {
                    assert_eq!(ea, eb, "node {i} entries");
                    assert_eq!(
                        la.read_all(&a.pager),
                        lb.read_all(&b.pager),
                        "node {i} records"
                    );
                }
                _ => panic!("node {i}: kind mismatch"),
            }
        }
    }

    #[test]
    fn bulk_load_replays_incremental_insertion() {
        for (n, mem, seed) in [
            (40usize, 1usize << 20, 3u64),
            (500, 1 << 20, 9),
            (300, 600, 5),
        ] {
            let objs = random_objects(n, seed);
            let mut incremental = Octree::new(MemPager::new(512), domain2d(), mem, 40);
            insert_all(&mut incremental, &objs);
            let items: Vec<(HyperRect, Vec<u8>)> = objs
                .iter()
                .map(|(id, ubr)| (ubr.clone(), encode_leaf_record(*id, ubr)))
                .collect();
            let bulk = Octree::bulk_load(MemPager::new(512), domain2d(), mem, 40, &items);
            assert_logically_equal(&incremental, &bulk);
            assert_eq!(incremental.stats(), bulk.stats());
        }
    }

    #[test]
    fn bulk_and_incremental_reemit_identical_pages() {
        let objs = random_objects(400, 11);
        let mut incremental = Octree::new(MemPager::new(512), domain2d(), 1 << 20, 40);
        insert_all(&mut incremental, &objs);
        let items: Vec<(HyperRect, Vec<u8>)> = objs
            .iter()
            .map(|(id, ubr)| (ubr.clone(), encode_leaf_record(*id, ubr)))
            .collect();
        let bulk = Octree::bulk_load(MemPager::new(512), domain2d(), 1 << 20, 40, &items);
        // Live page images differ (split churn vs one-shot emission), but
        // canonical re-emission onto fresh pagers is byte-identical.
        let pa = MemPager::new(512);
        let pb = MemPager::new(512);
        let ca = incremental.reemit_canonical(pa.clone());
        let cb = bulk.reemit_canonical(pb.clone());
        assert_eq!(pa.image(), pb.image());
        assert_eq!(ca.to_snapshot(), cb.to_snapshot());
        // Re-emission preserves query results.
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..40 {
            let q = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
            let ids = |recs: Vec<Vec<u8>>| {
                let mut v: Vec<u64> = recs.iter().map(|r| decode_leaf_record(r, 2).0).collect();
                v.sort_unstable();
                v
            };
            assert_eq!(ids(ca.point_query(&q)), ids(incremental.point_query(&q)));
        }
        // Canonicalisation is idempotent: re-emitting the canonical tree
        // reproduces the same bytes.
        let pc = MemPager::new(512);
        let _ = ca.reemit_canonical(pc.clone());
        assert_eq!(pc.image(), pa.image());
    }

    #[test]
    fn splits_happen_with_memory() {
        let mut tree = mk_tree(1 << 20);
        let objs = random_objects(500, 9);
        insert_all(&mut tree, &objs);
        let st = tree.stats();
        assert!(st.internal_nodes > 0, "expected splits: {st:?}");
        assert!(st.depth > 1);
    }

    #[test]
    fn no_memory_means_chaining_not_splitting() {
        // Budget so small that no leaf can ever split.
        let mut tree = mk_tree(64);
        let objs = random_objects(200, 11);
        insert_all(&mut tree, &objs);
        let st = tree.stats();
        assert_eq!(st.internal_nodes, 0);
        assert_eq!(st.leaf_nodes, 1);
        // all records in one chained leaf
        assert_eq!(st.leaf_records, 200);
        let recs = tree.point_query(&Point::new(vec![50.0, 50.0]));
        assert_eq!(recs.len(), 200, "single leaf holds everything");
    }

    #[test]
    fn memory_budget_is_respected() {
        let budget = 4096;
        let mut tree = Octree::new(MemPager::new(512), domain2d(), budget, 40);
        let objs = random_objects(2000, 13);
        insert_all(&mut tree, &objs);
        assert!(
            tree.mem_used() <= budget,
            "mem_used {} exceeds budget {budget}",
            tree.mem_used()
        );
    }

    #[test]
    fn range_query_deduplicates() {
        let mut tree = mk_tree(1 << 20);
        // one big object spanning many leaves, plus enough small ones to
        // force splits; a single lookup must cover them all because splits
        // re-route every resident object.
        let big = HyperRect::new(vec![10.0, 10.0], vec![80.0, 80.0]);
        let mut objs = vec![(1u64, big.clone())];
        objs.extend(
            random_objects(400, 17)
                .into_iter()
                .map(|(id, r)| (id + 100, r)),
        );
        insert_all(&mut tree, &objs);
        let hits = tree.range_query(&HyperRect::new(vec![0.0, 0.0], vec![100.0, 100.0]));
        let ones = hits
            .iter()
            .filter(|r| decode_leaf_record(r, 2).0 == 1)
            .count();
        assert_eq!(ones, 1, "big object must be reported once");
    }

    #[test]
    fn remove_erases_everywhere() {
        let mut tree = mk_tree(1 << 20);
        let objs = random_objects(300, 19);
        insert_all(&mut tree, &objs);
        let (id, ubr) = objs[42].clone();
        let removed = tree.remove(&ubr, id);
        assert!(removed >= 1);
        let probe = ubr.center();
        let got: Vec<u64> = tree
            .point_query(&probe)
            .iter()
            .map(|r| decode_leaf_record(r, 2).0)
            .collect();
        assert!(!got.contains(&id));
        // total records decreased by exactly `removed`
        assert_eq!(tree.stats().leaf_records, {
            let mut tree2 = mk_tree(1 << 20);
            insert_all(&mut tree2, &objs);
            tree2.stats().leaf_records - removed
        });
    }

    #[test]
    fn insert_delta_only_touches_new_leaves() {
        let mut tree = mk_tree(1 << 20);
        let objs = random_objects(400, 23);
        insert_all(&mut tree, &objs);
        let lookup_src: std::collections::HashMap<u64, HyperRect> = objs.iter().cloned().collect();
        let old = HyperRect::new(vec![10.0, 10.0], vec![20.0, 20.0]);
        let new = HyperRect::new(vec![10.0, 10.0], vec![40.0, 40.0]);
        let id = 9999u64;
        let lookup = {
            let old = old.clone();
            move |i: u64| {
                if i == id {
                    old.clone()
                } else {
                    lookup_src[&i].clone()
                }
            }
        };
        tree.insert(&old, &encode_leaf_record(id, &old), &lookup);
        let before = tree.stats().leaf_records;
        tree.insert_delta(&old, &new, &encode_leaf_record(id, &old), &lookup);
        let after = tree.stats().leaf_records;
        assert!(after >= before, "delta insert never removes");
        // object must now be found across the whole new UBR
        let q = Point::new(vec![35.0, 35.0]);
        let got: Vec<u64> = tree
            .point_query(&q)
            .iter()
            .map(|r| decode_leaf_record(r, 2).0)
            .collect();
        assert!(got.contains(&id));
    }

    #[test]
    fn remove_delta_keeps_surviving_leaves() {
        let mut tree = mk_tree(1 << 20);
        let objs = random_objects(400, 29);
        insert_all(&mut tree, &objs);
        let lookup_src: std::collections::HashMap<u64, HyperRect> = objs.iter().cloned().collect();
        let old = HyperRect::new(vec![10.0, 10.0], vec![60.0, 60.0]);
        let new = HyperRect::new(vec![10.0, 10.0], vec![25.0, 25.0]);
        let id = 8888u64;
        let lookup = {
            let old = old.clone();
            move |i: u64| {
                if i == id {
                    old.clone()
                } else {
                    lookup_src[&i].clone()
                }
            }
        };
        tree.insert(&old, &encode_leaf_record(id, &old), &lookup);
        tree.remove_delta(&old, &new, id);
        // still present inside the new UBR…
        let got: Vec<u64> = tree
            .point_query(&Point::new(vec![15.0, 15.0]))
            .iter()
            .map(|r| decode_leaf_record(r, 2).0)
            .collect();
        assert!(got.contains(&id), "must remain in kept region");
        // …gone far outside it
        let got: Vec<u64> = tree
            .point_query(&Point::new(vec![55.0, 55.0]))
            .iter()
            .map(|r| decode_leaf_record(r, 2).0)
            .collect();
        assert!(!got.contains(&id), "must be gone from dropped region");
    }

    #[test]
    fn record_codec_roundtrip() {
        let r = HyperRect::new(vec![1.5, -2.0, 3.0], vec![4.0, 5.0, 6.5]);
        let rec = encode_leaf_record(42, &r);
        let (id, back) = decode_leaf_record(&rec, 3);
        assert_eq!(id, 42);
        assert_eq!(back, r);
    }

    #[test]
    fn three_dimensional_tree() {
        let pager = MemPager::new(512);
        let mut tree = Octree::new(pager, HyperRect::cube(3, 0.0, 100.0), 1 << 20, 56);
        let mut rng = StdRng::seed_from_u64(31);
        let objs: Vec<(u64, HyperRect)> = (0..300)
            .map(|i| {
                let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..90.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(0.5..8.0)).collect();
                (i as u64, HyperRect::new(lo, hi))
            })
            .collect();
        let lookup_src: std::collections::HashMap<u64, HyperRect> = objs.iter().cloned().collect();
        let lookup = move |id: u64| lookup_src[&id].clone();
        for (id, ubr) in &objs {
            tree.insert(ubr, &encode_leaf_record(*id, ubr), &lookup);
        }
        let q = Point::new(vec![45.0, 45.0, 45.0]);
        let got: std::collections::HashSet<u64> = tree
            .point_query(&q)
            .iter()
            .map(|r| decode_leaf_record(r, 3).0)
            .collect();
        for (id, ubr) in &objs {
            if ubr.contains_point(&q) {
                assert!(got.contains(id));
            }
        }
        // 8 children per internal node in 3-D
        assert!(tree.stats().internal_nodes > 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        let pager = MemPager::new(512);
        let mut tree = Octree::new(pager.clone(), domain2d(), 1 << 20, 40);
        let objs = random_objects(400, 41);
        insert_all(&mut tree, &objs);
        let snap = tree.to_snapshot();
        let restored = Octree::from_snapshot(pager.clone(), &snap).unwrap();
        assert_eq!(restored.stats(), tree.stats());
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..25 {
            let q = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
            assert_eq!(restored.point_query(&q), tree.point_query(&q));
        }
        // corruption surfaces as an error, not a panic
        assert!(Octree::<MemPager>::from_snapshot(pager.clone(), &snap[..snap.len() / 2]).is_err());
        let mut bad = snap.clone();
        bad[0] = 0xFF; // absurd dimensionality
        assert!(Octree::<MemPager>::from_snapshot(pager, &bad).is_err());
    }

    #[test]
    fn fork_shares_structure_and_diverges_on_write() {
        let pager = MemPager::new(512);
        let mut tree = Octree::new(pager.clone(), domain2d(), 1 << 20, 40);
        let objs = random_objects(400, 47);
        insert_all(&mut tree, &objs);
        let before = tree.stats();

        let fork_pager = pager.fork();
        let mut fork = tree.fork(fork_pager.clone());
        assert_eq!(fork.stats(), before);

        // Mutate only the fork: remove one object and insert a fresh one.
        let lookup_src: std::collections::HashMap<u64, HyperRect> = objs.iter().cloned().collect();
        let (gone_id, gone_ubr) = objs[7].clone();
        fork.remove(&gone_ubr, gone_id);
        let fresh = HyperRect::new(vec![48.0, 48.0], vec![52.0, 52.0]);
        let lookup = {
            let fresh = fresh.clone();
            move |i: u64| {
                if i == 7777 {
                    fresh.clone()
                } else {
                    lookup_src[&i].clone()
                }
            }
        };
        fork.insert(&fresh, &encode_leaf_record(7777, &fresh), &lookup);

        // The original tree is bit-for-bit unaffected.
        assert_eq!(tree.stats(), before);
        let probe = gone_ubr.center();
        let orig_ids: Vec<u64> = tree
            .point_query(&probe)
            .iter()
            .map(|r| decode_leaf_record(r, 2).0)
            .collect();
        assert!(orig_ids.contains(&gone_id), "original must keep the object");
        let fork_ids: Vec<u64> = fork
            .point_query(&probe)
            .iter()
            .map(|r| decode_leaf_record(r, 2).0)
            .collect();
        assert!(!fork_ids.contains(&gone_id), "fork must have removed it");

        // The fork copied only the pages it touched, not the whole device.
        assert!(
            (fork_pager.cow_copies() as usize) < pager.live_pages() / 2,
            "fork copied {} of {} pages — not structural sharing",
            fork_pager.cow_copies(),
            pager.live_pages()
        );
        assert!(fork_pager.shared_pages() > 0, "no page stayed shared");
    }

    #[test]
    fn io_charged_for_point_queries() {
        let pager = MemPager::new(512);
        let mut tree = Octree::new(pager.clone(), domain2d(), 1 << 20, 40);
        let objs = random_objects(200, 37);
        insert_all(&mut tree, &objs);
        let s0 = pager.stats().snapshot();
        let _ = tree.point_query(&Point::new(vec![50.0, 50.0]));
        let s1 = pager.stats().snapshot();
        assert!(s1.since(&s0).reads >= 1, "leaf pages must cost reads");
        assert_eq!(s1.since(&s0).writes, 0, "queries must not write");
    }
}
