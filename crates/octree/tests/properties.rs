//! Property tests: the octree must agree with a linear scan under arbitrary
//! interleavings of inserts and removals, for every memory budget.

use proptest::prelude::*;
use pv_geom::{HyperRect, Point};
use pv_octree::{decode_leaf_record, encode_leaf_record, Octree};
use pv_storage::MemPager;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone)]
enum Op {
    Insert { lo: (f64, f64), ext: (f64, f64) },
    RemoveNth(usize),
    PointQuery { x: f64, y: f64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => ((0.0f64..95.0, 0.0f64..95.0), (0.5f64..20.0, 0.5f64..20.0))
            .prop_map(|(lo, ext)| Op::Insert { lo, ext }),
        1 => (0usize..64).prop_map(Op::RemoveNth),
        3 => (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Op::PointQuery { x, y }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn octree_matches_linear_scan(
        ops in prop::collection::vec(arb_op(), 1..140),
        mem_budget in prop::sample::select(vec![64usize, 2_048, 1 << 20]),
    ) {
        let domain = HyperRect::cube(2, 0.0, 100.0);
        let mut tree = Octree::new(MemPager::new(256), domain.clone(), mem_budget, 40);
        let mut shadow: HashMap<u64, HyperRect> = HashMap::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Insert { lo, ext } => {
                    let ubr = HyperRect::new(
                        vec![lo.0, lo.1],
                        vec![(lo.0 + ext.0).min(100.0), (lo.1 + ext.1).min(100.0)],
                    );
                    shadow.insert(next_id, ubr.clone());
                    let lookup_src = shadow.clone();
                    let lookup = move |id: u64| lookup_src[&id].clone();
                    tree.insert(&ubr, &encode_leaf_record(next_id, &ubr), &lookup);
                    next_id += 1;
                }
                Op::RemoveNth(n) => {
                    if !shadow.is_empty() {
                        let key = *shadow.keys().nth(n % shadow.len()).unwrap();
                        let ubr = shadow.remove(&key).unwrap();
                        let removed = tree.remove(&ubr, key);
                        prop_assert!(removed >= 1, "id {key} had no leaf records");
                    }
                }
                Op::PointQuery { x, y } => {
                    let q = Point::new(vec![x, y]);
                    let got: HashSet<u64> = tree
                        .point_query(&q)
                        .iter()
                        .map(|r| decode_leaf_record(r, 2).0)
                        .collect();
                    // completeness: every object whose UBR contains q is found
                    for (id, ubr) in &shadow {
                        if ubr.contains_point(&q) {
                            prop_assert!(got.contains(id),
                                "object {id} with UBR {ubr:?} missing at {q:?}");
                        }
                    }
                    // soundness of the record store: returned ids exist
                    for id in &got {
                        prop_assert!(shadow.contains_key(id), "ghost record {id}");
                    }
                }
            }
            prop_assert!(tree.mem_used() <= mem_budget.max(64),
                "memory budget violated: {} > {}", tree.mem_used(), mem_budget);
        }
        // final integrity: per-leaf record counters match reality
        let st = tree.stats();
        prop_assert!(st.leaf_records >= shadow.len());
    }
}
