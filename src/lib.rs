//! # pv-suite — Voronoi-based NN search for multi-dimensional uncertain databases
//!
//! Umbrella crate re-exporting the full workspace: a from-scratch Rust
//! reproduction of *"Voronoi-based Nearest Neighbor Search for
//! Multi-Dimensional Uncertain Databases"* (Zhang, Cheng, Mamoulis, Renz,
//! Züfle, Tang, Emrich — ICDE 2013).
//!
//! ## Crates
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `pv-geom` | points, hyper-rectangles, min/max distances, spatial domination |
//! | [`storage`] | `pv-storage` | simulated paged disk with I/O accounting |
//! | [`rtree`] | `pv-rtree` | R*-tree with distance browsing |
//! | [`exthash`] | `pv-exthash` | extendible hash table on disk pages |
//! | [`octree`] | `pv-octree` | `2^d`-ary primary index with disk-resident leaves |
//! | [`uncertain`] | `pv-uncertain` | uncertain-object model (regions + discrete pdfs) |
//! | [`workload`] | `pv-workload` | dataset generators & query workloads |
//! | [`core`] | `pv-core` | SE algorithm, PV-index, PNNQ, incremental updates |
//! | [`uvindex`] | `pv-uvindex` | UV-index baseline (2-D circles) |
//!
//! ## Quickstart
//!
//! Every engine (PV-index, R-tree baseline, UV-index, linear scan) answers
//! queries through the same [`core::QuerySpec`] / [`core::ProbNnEngine`]
//! API:
//!
//! ```
//! use pv_suite::core::{ProbNnEngine, PvIndex, PvParams, QuerySpec};
//! use pv_suite::workload::{synthetic, queries, SyntheticConfig};
//!
//! // A small 3-D uncertain database, paper-style.
//! let db = synthetic(&SyntheticConfig { n: 300, dim: 3, samples: 50, ..Default::default() });
//! let index = PvIndex::build(&db, PvParams::default());
//!
//! // A probabilistic nearest-neighbor query: answers arrive sorted by
//! // qualification probability, with per-phase statistics.
//! let q = queries::uniform(&db.domain, 1, 1)[0].clone();
//! let outcome = index.run(&QuerySpec::point(q));
//! let total: f64 = outcome.answers.iter().map(|(_, p)| p).sum();
//! assert!((total - 1.0).abs() < 1e-6);
//! assert!(outcome.stats.total_io() > 0);
//!
//! // Richer answer semantics and batching ride on the same spec:
//! let qs = queries::uniform(&db.domain, 16, 2);
//! let batch = index.query_batch(&qs, &QuerySpec::new().top_k(3).threshold(0.05));
//! assert_eq!(batch.outcomes.len(), 16);
//! assert!(batch.outcomes.iter().all(|o| o.answers.len() <= 3));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! experiment harness reproducing every figure of the paper's evaluation.

#![deny(missing_docs)]

pub use pv_core as core;
pub use pv_exthash as exthash;
pub use pv_geom as geom;
pub use pv_octree as octree;
pub use pv_rtree as rtree;
pub use pv_storage as storage;
pub use pv_uncertain as uncertain;
pub use pv_uvindex as uvindex;
pub use pv_workload as workload;
