//! # pv-suite — Voronoi-based NN search for multi-dimensional uncertain databases
//!
//! Umbrella crate re-exporting the full workspace: a from-scratch Rust
//! reproduction of *"Voronoi-based Nearest Neighbor Search for
//! Multi-Dimensional Uncertain Databases"* (Zhang, Cheng, Mamoulis, Renz,
//! Züfle, Tang, Emrich — ICDE 2013).
//!
//! ## Crates
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `pv-geom` | points, hyper-rectangles, min/max distances, spatial domination |
//! | [`storage`] | `pv-storage` | simulated paged disk with I/O accounting |
//! | [`rtree`] | `pv-rtree` | R*-tree with distance browsing |
//! | [`exthash`] | `pv-exthash` | extendible hash table on disk pages |
//! | [`octree`] | `pv-octree` | `2^d`-ary primary index with disk-resident leaves |
//! | [`uncertain`] | `pv-uncertain` | uncertain-object model (regions + discrete pdfs) |
//! | [`workload`] | `pv-workload` | dataset generators & query workloads |
//! | [`core`] | `pv-core` | SE algorithm, PV-index, PNNQ, incremental updates |
//! | [`uvindex`] | `pv-uvindex` | UV-index baseline (2-D circles) |
//!
//! ## Quickstart
//!
//! ```
//! use pv_suite::core::{PvIndex, PvParams};
//! use pv_suite::workload::{synthetic, queries, SyntheticConfig};
//!
//! // A small 3-D uncertain database, paper-style.
//! let db = synthetic(&SyntheticConfig { n: 300, dim: 3, samples: 50, ..Default::default() });
//! let index = PvIndex::build(&db, PvParams::default());
//!
//! // A probabilistic nearest-neighbor query.
//! let q = &queries::uniform(&db.domain, 1, 1)[0];
//! let (answers, stats) = index.query(q);
//! let total: f64 = answers.iter().map(|(_, p)| p).sum();
//! assert!((total - 1.0).abs() < 1e-6);
//! assert!(stats.total_io() > 0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! experiment harness reproducing every figure of the paper's evaluation.

#![deny(missing_docs)]

pub use pv_core as core;
pub use pv_exthash as exthash;
pub use pv_geom as geom;
pub use pv_octree as octree;
pub use pv_rtree as rtree;
pub use pv_storage as storage;
pub use pv_uncertain as uncertain;
pub use pv_uvindex as uvindex;
pub use pv_workload as workload;
