//! # pv-suite — Voronoi-based NN search for multi-dimensional uncertain databases
//!
//! Umbrella crate re-exporting the full workspace: a from-scratch Rust
//! reproduction of *"Voronoi-based Nearest Neighbor Search for
//! Multi-Dimensional Uncertain Databases"* (Zhang, Cheng, Mamoulis, Renz,
//! Züfle, Tang, Emrich — ICDE 2013).
//!
//! ## Crates
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geom`] | `pv-geom` | points, hyper-rectangles, min/max distances, spatial domination |
//! | [`storage`] | `pv-storage` | simulated paged disk with I/O accounting |
//! | [`rtree`] | `pv-rtree` | R*-tree with distance browsing |
//! | [`exthash`] | `pv-exthash` | extendible hash table on disk pages |
//! | [`octree`] | `pv-octree` | `2^d`-ary primary index with disk-resident leaves |
//! | [`uncertain`] | `pv-uncertain` | uncertain-object model (regions + discrete pdfs) |
//! | [`workload`] | `pv-workload` | dataset generators & query workloads |
//! | [`core`] | `pv-core` | SE algorithm, PV-index, PNNQ, incremental updates |
//! | [`uvindex`] | `pv-uvindex` | UV-index baseline (2-D circles) |
//!
//! ## Quickstart
//!
//! Every engine (PV-index, R-tree baseline, UV-index, linear scan) answers
//! queries through the same [`core::QuerySpec`] / [`core::ProbNnEngine`]
//! API, and any of them can be served concurrently through the
//! [`core::db::Db`] facade — readers pin immutable snapshots, a single
//! writer publishes copy-on-write successors, and bad requests come back
//! as typed errors instead of panics:
//!
//! ```
//! use pv_suite::core::db::Db;
//! use pv_suite::core::{PvIndex, PvParams, QuerySpec, QueryError};
//! use pv_suite::uncertain::UncertainObject;
//! use pv_suite::geom::HyperRect;
//! use pv_suite::workload::{synthetic, queries, SyntheticConfig};
//!
//! // A small 3-D uncertain database, paper-style, behind a shared handle.
//! let data = synthetic(&SyntheticConfig { n: 300, dim: 3, samples: 50, ..Default::default() });
//! let db = Db::new(PvIndex::build(&data, PvParams::default()));
//!
//! // A probabilistic nearest-neighbor query: answers arrive sorted by
//! // qualification probability, with per-phase statistics.
//! let q = queries::uniform(&data.domain, 1, 1)[0].clone();
//! let outcome = db.query(&q, &QuerySpec::new())?;
//! let total: f64 = outcome.answers.iter().map(|(_, p)| p).sum();
//! assert!((total - 1.0).abs() < 1e-6);
//! assert!(outcome.stats.total_io() > 0);
//!
//! // Writes publish new snapshots; concurrent readers never block on them.
//! db.insert(UncertainObject::uniform(
//!     10_000,
//!     HyperRect::new(vec![1.0; 3], vec![2.0; 3]),
//!     50,
//! )).expect("fresh id");
//! assert_eq!(db.len(), 301);
//!
//! // Richer answer semantics and batching ride on the same spec:
//! let qs = queries::uniform(&data.domain, 16, 2);
//! let batch = db.query_batch(&qs, &QuerySpec::new().with_top_k(3).with_threshold(0.05))?;
//! assert_eq!(batch.outcomes.len(), 16);
//! assert!(batch.outcomes.iter().all(|o| o.answers.len() <= 3));
//! # Ok::<(), QueryError>(())
//! ```
//!
//! See `examples/` for runnable scenarios (`concurrent_serving` drives the
//! facade from multiple threads) and `crates/bench` for the experiment
//! harness reproducing every figure of the paper's evaluation.

#![deny(missing_docs)]

pub use pv_core as core;
pub use pv_exthash as exthash;
pub use pv_geom as geom;
pub use pv_octree as octree;
pub use pv_rtree as rtree;
pub use pv_storage as storage;
pub use pv_uncertain as uncertain;
pub use pv_uvindex as uvindex;
pub use pv_workload as workload;
