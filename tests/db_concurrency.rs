//! Concurrency contract of the `Db` facade.
//!
//! * **Snapshot isolation**: while a writer streams inserts/removes,
//!   readers running full PNNQ batches must always observe a state that
//!   equals *some* published snapshot — never a half-applied update. The
//!   writer's operation sequence is deterministic, so every published
//!   version `v` has a precomputed expected object set; each observation is
//!   checked against a `LinearScan` ground truth built over exactly that
//!   set.
//! * **Non-blocking reads**: readers run concurrently with the writer for
//!   the whole test (no lock ordering can starve them — the only shared
//!   critical section is a pointer swap) and observe multiple versions in
//!   monotone order.
//! * **Drop ordering**: superseded snapshots stay alive exactly as long as
//!   a reader pins them, and are freed the moment the last pin drops.

use pv_suite::core::db::Db;
use pv_suite::core::{LinearScan, ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::geom::HyperRect;
use pv_suite::uncertain::{UncertainDb, UncertainObject};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// One deterministic churn step: inserts get fresh ids, every third step
/// removes the oldest still-present object.
enum Op {
    Insert(UncertainObject),
    Remove(u64),
}

fn build_script(db: &UncertainDb, steps: usize) -> (Vec<Op>, Vec<Vec<UncertainObject>>) {
    let fresh = synthetic(&SyntheticConfig {
        n: steps,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 999,
    });
    let mut ops = Vec::with_capacity(steps);
    let mut shadow: Vec<UncertainObject> = db.objects.clone();
    // states[v] = the object set published as version v (v = 0 is the seed).
    let mut states = vec![shadow.clone()];
    let mut remove_cursor = 0u64;
    for (k, mut o) in fresh.objects.into_iter().enumerate() {
        if k % 3 == 2 {
            let id = remove_cursor;
            remove_cursor += 1;
            shadow.retain(|x| x.id != id);
            ops.push(Op::Remove(id));
        } else {
            o.id = 10_000 + k as u64;
            shadow.push(o.clone());
            ops.push(Op::Insert(o));
        }
        states.push(shadow.clone());
    }
    (ops, states)
}

#[test]
fn readers_always_observe_a_published_snapshot() {
    let seed_db = synthetic(&SyntheticConfig {
        n: 90,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 4,
    });
    let steps = 30;
    let (ops, states) = build_script(&seed_db, steps);
    // Ground truth per version, built once and shared read-only.
    let scans: Vec<LinearScan> = states
        .iter()
        .map(|objs| LinearScan::new(&UncertainDb::new(seed_db.domain.clone(), objs.clone())))
        .collect();
    let expected_ids: Vec<Vec<u64>> = states
        .iter()
        .map(|objs| {
            let mut ids: Vec<u64> = objs.iter().map(|o| o.id).collect();
            ids.sort_unstable();
            ids
        })
        .collect();

    let db = Db::new(PvIndex::build(&seed_db, PvParams::default()));
    let qs = queries::uniform(&seed_db.domain, 5, 17);
    let spec = QuerySpec::new().with_top_k(4);
    let done = AtomicBool::new(false);
    let start = Barrier::new(4); // 3 readers + 1 writer
    let mut versions_seen: Vec<Vec<u64>> = Vec::new();

    std::thread::scope(|scope| {
        let mut reader_handles = Vec::new();
        for _ in 0..3 {
            reader_handles.push(scope.spawn(|| {
                start.wait();
                let mut seen = Vec::new();
                let mut last_version = 0u64;
                while !done.load(Ordering::Relaxed) || seen.len() < 5 {
                    let reader = db.reader();
                    let v = reader.version();
                    assert!(
                        v >= last_version,
                        "reader went back in time: {v} after {last_version}"
                    );
                    last_version = v;
                    seen.push(v);
                    let v = v as usize;
                    assert!(v < expected_ids.len(), "unknown version {v}");
                    // The pinned state is exactly the set published as v —
                    // no torn mix of two updates.
                    assert_eq!(
                        reader.engine().ids(),
                        expected_ids[v],
                        "snapshot {v} does not match its published object set"
                    );
                    // And full PNNQ answers over the pinned snapshot match
                    // the ground truth over that exact object set.
                    for q in &qs {
                        let got = reader.engine().execute(q, &spec).expect("pinned query");
                        let want = scans[v].execute(q, &spec).expect("ground truth");
                        assert_eq!(
                            got.answers, want.answers,
                            "answers at version {v} diverge from its ground truth"
                        );
                    }
                }
                seen
            }));
        }
        scope.spawn(|| {
            start.wait();
            for op in &ops {
                match op {
                    Op::Insert(o) => {
                        db.insert(o.clone()).expect("scripted insert");
                    }
                    Op::Remove(id) => {
                        db.remove(*id).expect("scripted remove");
                    }
                }
                // Give readers a window to overlap every publication.
                std::thread::sleep(Duration::from_millis(2));
            }
            done.store(true, Ordering::Relaxed);
        });
        for h in reader_handles {
            versions_seen.push(h.join().expect("reader panicked"));
        }
    });

    assert_eq!(
        db.version(),
        steps as u64,
        "every op published exactly once"
    );
    let distinct: std::collections::BTreeSet<u64> =
        versions_seen.iter().flatten().copied().collect();
    assert!(
        distinct.len() >= 2,
        "readers only ever saw one version — no concurrency was exercised"
    );
    // Final state equals the scripted end state.
    assert_eq!(db.reader().engine().ids(), *expected_ids.last().unwrap());
}

#[test]
fn sessions_under_write_load_answer_from_consistent_states() {
    // The pooled-session path: outcomes of a batch must all come from one
    // snapshot even while versions churn underneath.
    let seed_db = synthetic(&SyntheticConfig {
        n: 60,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 5,
    });
    let steps = 12;
    let (ops, states) = build_script(&seed_db, steps);
    let scans: Vec<LinearScan> = states
        .iter()
        .map(|objs| LinearScan::new(&UncertainDb::new(seed_db.domain.clone(), objs.clone())))
        .collect();
    let db = Db::new(PvIndex::build(&seed_db, PvParams::default()));
    let qs = queries::uniform(&seed_db.domain, 8, 23);
    let spec = QuerySpec::new().with_top_k(3).with_batch_threads(1);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            let mut session = db.session();
            let mut batches = 0usize;
            while !done.load(Ordering::Relaxed) || batches < 4 {
                session.query_batch(&qs, &spec).expect("session batch");
                // Every outcome of this batch must match a single published
                // state's ground truth.
                let matched = scans.iter().any(|scan| {
                    qs.iter().zip(session.outcomes()).all(|(q, out)| {
                        scan.execute(q, &spec).expect("ground truth").answers == out.answers
                    })
                });
                assert!(matched, "a batch mixed answers from different snapshots");
                batches += 1;
            }
        });
        scope.spawn(|| {
            for op in &ops {
                match op {
                    Op::Insert(o) => {
                        db.insert(o.clone()).expect("scripted insert");
                    }
                    Op::Remove(id) => {
                        db.remove(*id).expect("scripted remove");
                    }
                }
                std::thread::sleep(Duration::from_millis(3));
            }
            done.store(true, Ordering::Relaxed);
        });
        reader.join().expect("session reader panicked");
    });
}

#[test]
fn pinned_snapshots_survive_many_later_cow_commits_intact() {
    // COW torture (PR 6): readers pin snapshots and *hold* them while the
    // writer churns through many page-level copy-on-write commits, then
    // verify the pinned state only after the full history has been written
    // on top of it. Any commit that mutates a page shared with an older
    // version corrupts that version retroactively — this test fails loudly
    // if it does, where `readers_always_observe_a_published_snapshot`
    // (which verifies each snapshot immediately) could race past it.
    let seed_db = synthetic(&SyntheticConfig {
        n: 80,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 6,
    });
    let steps = 40;
    let (ops, states) = build_script(&seed_db, steps);
    let scans: Vec<LinearScan> = states
        .iter()
        .map(|objs| LinearScan::new(&UncertainDb::new(seed_db.domain.clone(), objs.clone())))
        .collect();
    let expected_ids: Vec<Vec<u64>> = states
        .iter()
        .map(|objs| {
            let mut ids: Vec<u64> = objs.iter().map(|o| o.id).collect();
            ids.sort_unstable();
            ids
        })
        .collect();

    let db = Db::new(PvIndex::build(&seed_db, PvParams::default()));
    let qs = queries::uniform(&seed_db.domain, 5, 29);
    let spec = QuerySpec::new().with_top_k(4);
    let done = AtomicBool::new(false);
    let start = Barrier::new(3); // 2 pinning readers + 1 writer

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..2 {
            handles.push(scope.spawn(|| {
                start.wait();
                // Pin snapshots as versions fly by and hold every one of
                // them until the writer has finished.
                let mut pinned = vec![db.reader()];
                while !done.load(Ordering::Relaxed) {
                    let reader = db.reader();
                    if reader.version() > pinned.last().unwrap().version() {
                        pinned.push(reader);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                pinned.push(db.reader()); // the final state too
                pinned
            }));
        }
        scope.spawn(|| {
            start.wait();
            for op in &ops {
                match op {
                    Op::Insert(o) => {
                        db.insert(o.clone()).expect("scripted insert");
                    }
                    Op::Remove(id) => {
                        db.remove(*id).expect("scripted remove");
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            done.store(true, Ordering::Relaxed);
        });

        let mut audited = std::collections::BTreeSet::new();
        for h in handles {
            for reader in h.join().expect("pinning reader panicked") {
                // Only now — after all 40 commits have landed — does anyone
                // look at the old snapshots.
                let v = reader.version() as usize;
                assert!(v < expected_ids.len(), "unknown version {v}");
                assert_eq!(
                    reader.engine().ids(),
                    expected_ids[v],
                    "pinned snapshot {v} was corrupted by later commits"
                );
                for q in &qs {
                    let got = reader.engine().execute(q, &spec).expect("pinned query");
                    let want = scans[v].execute(q, &spec).expect("ground truth");
                    assert_eq!(
                        got.answers, want.answers,
                        "pinned snapshot {v} answers diverged after later commits"
                    );
                }
                audited.insert(v);
            }
        }
        assert!(
            audited.len() >= 4,
            "only {} distinct versions were pinned — torture too weak",
            audited.len()
        );
        assert!(
            audited.contains(&steps),
            "the final version must be audited"
        );
    });
}

#[test]
fn superseded_snapshots_are_freed_once_unpinned() {
    let domain = HyperRect::cube(2, 0.0, 100.0);
    let objects: Vec<UncertainObject> = (0..6u64)
        .map(|i| {
            UncertainObject::uniform(
                i,
                HyperRect::new(vec![i as f64 * 10.0, 0.0], vec![i as f64 * 10.0 + 3.0, 3.0]),
                8,
            )
        })
        .collect();
    let db = Db::new(LinearScan::new(&UncertainDb::new(domain, objects)));

    let pinned = db.reader();
    let weak = Arc::downgrade(pinned.pinned());
    let extra = UncertainObject::uniform(50, HyperRect::new(vec![1.0, 1.0], vec![2.0, 2.0]), 8);
    db.insert(extra).expect("fresh id");

    // Superseded, but still pinned: alive.
    assert!(weak.upgrade().is_some(), "pinned snapshot must stay alive");
    let second_pin = pinned.clone();
    drop(pinned);
    assert!(
        weak.upgrade().is_some(),
        "a cloned pin must keep the snapshot alive"
    );
    drop(second_pin);
    assert!(
        weak.upgrade().is_none(),
        "the superseded snapshot must be freed when the last pin drops"
    );

    // The current snapshot is kept alive by the Db itself.
    let current = Arc::downgrade(db.reader().pinned());
    assert!(current.upgrade().is_some());
}
