//! Cross-crate storage accounting: the PV-index's primary and secondary
//! structures share one simulated disk; query I/O, page lifecycles and the
//! main-memory budget must behave like the paper's storage model.

use pv_suite::core::{ProbNnEngine, PvIndex, PvParams, QuerySpec, Step1Engine};
use pv_suite::storage::Pager;
use pv_suite::workload::{queries, synthetic, SyntheticConfig};

fn db(n: usize, seed: u64) -> pv_suite::uncertain::UncertainDb {
    synthetic(&SyntheticConfig {
        n,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed,
    })
}

#[test]
fn queries_read_but_never_write() {
    let db = db(400, 61);
    let index = PvIndex::build(&db, PvParams::default());
    let s0 = index.pager().stats().snapshot();
    for q in queries::uniform(&db.domain, 20, 1) {
        let _ = index.execute(&q, &QuerySpec::new()).expect("query");
    }
    let s1 = index.pager().stats().snapshot();
    let delta = s1.since(&s0);
    assert!(delta.reads > 0);
    assert_eq!(delta.writes, 0, "queries must be read-only");
    assert_eq!(delta.allocs, 0);
    assert_eq!(delta.frees, 0);
}

#[test]
fn step1_io_is_small_per_query() {
    let db = db(1_000, 62);
    let index = PvIndex::build(&db, PvParams::default());
    let mut total_io = 0u64;
    let m = 30;
    for q in queries::uniform(&db.domain, m, 2) {
        let (_, st) = index.step1(&q);
        total_io += st.io_reads;
    }
    // a point query touches exactly one leaf (its page chain); with the
    // default page size this stays in the low single digits per query
    assert!(
        total_io <= 6 * m as u64,
        "avg Step-1 I/O {} too high",
        total_io as f64 / m as f64
    );
}

#[test]
fn memory_budget_bounds_octree_nodes() {
    // A deliberately tiny budget forces page chaining; the node arena must
    // stay within it while queries remain exact.
    let db = db(600, 63);
    let params = PvParams {
        mem_budget: 8 * 1024,
        ..Default::default()
    };
    let index = PvIndex::build(&db, params);
    assert!(index.octree_stats().mem_used <= 8 * 1024);
    for q in queries::uniform(&db.domain, 15, 3) {
        let (got, _) = index.step1(&q);
        let want = pv_suite::core::verify::possible_nn(db.objects.iter(), &q);
        assert_eq!(got, want);
    }
}

#[test]
fn small_budget_costs_more_query_io() {
    let db = db(800, 64);
    let roomy = PvIndex::build(&db, PvParams::default());
    // A budget too small for even one split: the single root leaf grows by
    // page chaining only, so every point query scans the whole chain.
    let tight = PvIndex::build(
        &db,
        PvParams {
            mem_budget: 64,
            ..Default::default()
        },
    );
    let mut io_roomy = 0u64;
    let mut io_tight = 0u64;
    for q in queries::uniform(&db.domain, 25, 4) {
        io_roomy += roomy.step1(&q).1.io_reads;
        io_tight += tight.step1(&q).1.io_reads;
    }
    assert!(
        io_tight > io_roomy,
        "chained leaves ({io_tight}) should cost more I/O than split ones ({io_roomy})"
    );
}

#[test]
fn deletes_release_disk_pages() {
    let db = db(400, 65);
    let mut index = PvIndex::build(&db, PvParams::default());
    let s0 = index.pager().stats().snapshot();
    for id in 0..150u64 {
        index.remove(id).unwrap();
    }
    let s1 = index.pager().stats().snapshot();
    let delta = s1.since(&s0);
    assert!(delta.frees > 0, "page-list rewrites must free empty pages");
}

#[test]
fn secondary_index_holds_every_object() {
    let db = db(300, 66);
    let index = PvIndex::build(&db, PvParams::default());
    let st = index.secondary_stats();
    assert_eq!(st.entries, 300);
    assert!(st.buckets > 1);
    assert!(st.directory_size >= st.buckets);
}
