//! Reproducibility: the whole pipeline is seeded, so identical inputs must
//! produce identical indexes, answers and probabilities — across builds,
//! build parallelism, and rebuilds.

use pv_suite::core::{ProbNnEngine, PvIndex, PvParams, QuerySpec, Step1Engine};
use pv_suite::workload::{queries, realistic, synthetic, SyntheticConfig};

#[test]
fn identical_builds_identical_answers() {
    let cfg = SyntheticConfig {
        n: 250,
        dim: 3,
        max_side: 120.0,
        samples: 32,
        seed: 99,
    };
    let db1 = synthetic(&cfg);
    let db2 = synthetic(&cfg);
    let a = PvIndex::build(&db1, PvParams::default());
    let b = PvIndex::build(&db2, PvParams::default());
    for o in &db1.objects {
        assert_eq!(a.ubr(o.id), b.ubr(o.id));
    }
    for q in queries::uniform(&db1.domain, 20, 7) {
        let pa = a.execute(&q, &QuerySpec::new()).expect("query").answers;
        let pb = b.execute(&q, &QuerySpec::new()).expect("query").answers;
        assert_eq!(pa, pb, "probabilities must be bit-identical");
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let db = synthetic(&SyntheticConfig {
        n: 200,
        dim: 2,
        max_side: 150.0,
        samples: 16,
        seed: 101,
    });
    let serial = PvIndex::build(&db, PvParams::default());
    for threads in [2usize, 8, 16] {
        let par = PvIndex::build(
            &db,
            PvParams {
                build_threads: threads,
                ..Default::default()
            },
        );
        for o in &db.objects {
            assert_eq!(serial.ubr(o.id), par.ubr(o.id), "threads = {threads}");
        }
    }
}

#[test]
fn realistic_generators_are_seed_stable() {
    type Gen = fn(usize, u64) -> pv_suite::uncertain::UncertainDb;
    let generators: [(Gen, &str); 3] = [
        (realistic::roads, "roads"),
        (realistic::rrlines, "rrlines"),
        (realistic::airports, "airports"),
    ];
    for (mk, name) in generators {
        let a = mk(300, 5);
        let b = mk(300, 5);
        assert_eq!(a.objects, b.objects, "{name} must be deterministic");
        let c = mk(300, 6);
        assert_ne!(a.objects, c.objects, "{name} must vary with the seed");
    }
}

#[test]
fn rebuild_preserves_answers() {
    let db = synthetic(&SyntheticConfig {
        n: 200,
        dim: 2,
        max_side: 150.0,
        samples: 16,
        seed: 103,
    });
    let mut index = PvIndex::build(&db, PvParams::default());
    let qs = queries::uniform(&db.domain, 20, 9);
    let before: Vec<_> = qs.iter().map(|q| index.step1(q).0).collect();
    index.rebuild();
    let after: Vec<_> = qs.iter().map(|q| index.step1(q).0).collect();
    assert_eq!(before, after);
}
