//! Correctness harness for page-level copy-on-write commits (PR 6).
//!
//! COW aliasing bugs have a nasty failure mode: they corrupt *old*
//! snapshots silently — the current version keeps answering correctly while
//! a pinned reader serves garbage. So this suite randomizes commit
//! sequences and checks every historical snapshot, not just the head:
//!
//! * **Pinned-history equivalence** (proptest, dims 2–4): run a random
//!   interleaving of inserts and removes through `Db`, pin a `Reader` at
//!   every published version, and — after all later commits have landed —
//!   verify each pinned snapshot answers identically to a `LinearScan`
//!   built over exactly that version's object set.
//! * **Bounded page copies**: a single-object commit must physically copy
//!   only the few pages it writes (witnessed by the pager's COW
//!   copy-counter), leaving the bulk of the device shared with the
//!   previous snapshot — proving structural sharing rather than deep clone.
//!
//! The vendored proptest runner is deterministic (the RNG seed derives from
//! the test name and case index), so CI runs are reproducible; the
//! `PROPTEST_CASES` environment variable scales the case count for the
//! scheduled deep-fuzz job.

use proptest::prelude::*;
use pv_suite::core::db::Db;
use pv_suite::core::{LinearScan, ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::uncertain::{UncertainDb, UncertainObject};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Case count: small in the normal CI job (the build per case dominates),
/// scaled up by `PROPTEST_CASES` in the scheduled deep-fuzz job.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

fn seed_db(n: usize, dim: usize, seed: u64) -> UncertainDb {
    synthetic(&SyntheticConfig {
        n,
        dim,
        max_side: 150.0,
        samples: 8,
        seed,
    })
}

/// Verifies one pinned snapshot against the ground truth for its object set.
fn assert_snapshot_matches(
    reader: &pv_suite::core::Reader<PvIndex>,
    objects: &[UncertainObject],
    domain: &pv_suite::geom::HyperRect,
    query_seed: u64,
) -> Result<(), TestCaseError> {
    let mut want_ids: Vec<u64> = objects.iter().map(|o| o.id).collect();
    want_ids.sort_unstable();
    prop_assert_eq!(
        reader.engine().ids(),
        want_ids,
        "pinned snapshot v{} holds the wrong object set",
        reader.version()
    );
    let scan = LinearScan::new(&UncertainDb::new(domain.clone(), objects.to_vec()));
    let specs = [
        QuerySpec::new(),
        QuerySpec::new().with_top_k(3),
        QuerySpec::new().with_threshold(0.05),
    ];
    for q in queries::uniform(domain, 6, query_seed) {
        for spec in &specs {
            let got = reader.engine().execute(&q, spec).expect("pinned query");
            let want = scan.execute(&q, spec).expect("ground truth");
            prop_assert_eq!(
                &got.answers,
                &want.answers,
                "pinned snapshot v{} diverges from LinearScan at {:?} under {:?}",
                reader.version(),
                &q,
                spec
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Random insert/remove/commit interleavings: every historical
    /// snapshot, pinned at publication time, must still answer exactly
    /// after all later commits — no COW write may reach a shared page an
    /// older version can see.
    #[test]
    fn pinned_history_answers_like_linear_scan(
        dim in 2usize..=4,
        seed in 0u64..1_000,
        steps in 6usize..=14,
    ) {
        let base = seed_db(50, dim, 100 + seed);
        let mut rng = StdRng::seed_from_u64((seed << 8) | dim as u64);
        // Pool of future inserts, disjoint ids.
        let pool = seed_db(steps, dim, 4_000 + seed);

        let db = Db::new(PvIndex::build(&base, PvParams::default()));
        let mut shadow: Vec<UncertainObject> = base.objects.clone();
        // Pin v0 (the seed) too: it must survive the whole run.
        let mut pinned: Vec<(pv_suite::core::Reader<PvIndex>, Vec<UncertainObject>)> =
            vec![(db.reader(), shadow.clone())];

        let mut fresh = pool.objects.into_iter();
        for k in 0..steps {
            let do_remove = !shadow.is_empty() && rng.gen_bool(0.4);
            if do_remove {
                let victim = shadow[rng.gen_range(0..shadow.len())].id;
                shadow.retain(|o| o.id != victim);
                db.remove(victim).expect("scripted remove");
            } else {
                let mut o = fresh.next().expect("pool sized to steps");
                o.id = 10_000 + k as u64;
                shadow.push(o.clone());
                db.insert(o).expect("scripted insert");
            }
            pinned.push((db.reader(), shadow.clone()));
        }

        // All commits have landed; now audit the full pinned history.
        for (reader, objects) in &pinned {
            assert_snapshot_matches(reader, objects, &base.domain, 31 + seed)?;
        }
    }
}

/// Torture case for PR 8's bottom-up bulk load feeding the COW commit path:
/// the bulk loader writes each octree leaf page exactly once and sizes the
/// hash directory up front, producing a page image with a very different
/// allocation history than incremental insertion. Forked commits on top of
/// that image must still leave every pinned snapshot exact — including the
/// approximate-UBR variant, whose looser leaves shift which pages commits
/// touch.
#[test]
fn bulk_loaded_image_survives_commit_torture() {
    for (label, params) in [
        ("exact", PvParams::default()),
        ("approx", PvParams::default().approx_ubr(15.0)),
    ] {
        let base = seed_db(120, 3, 57);
        let db = Db::new(PvIndex::build(&base, params));
        let mut shadow: Vec<UncertainObject> = base.objects.clone();
        let mut pinned: Vec<(pv_suite::core::Reader<PvIndex>, Vec<UncertainObject>)> =
            vec![(db.reader(), shadow.clone())];

        let mut rng = StdRng::seed_from_u64(58);
        let pool = seed_db(20, 3, 4_580);
        let mut fresh = pool.objects.into_iter();
        for k in 0..20usize {
            if !shadow.is_empty() && rng.gen_bool(0.4) {
                let victim = shadow[rng.gen_range(0..shadow.len())].id;
                shadow.retain(|o| o.id != victim);
                db.remove(victim).expect("scripted remove");
            } else {
                let mut o = fresh.next().expect("pool sized to steps");
                o.id = 40_000 + k as u64;
                shadow.push(o.clone());
                db.insert(o).expect("scripted insert");
            }
            pinned.push((db.reader(), shadow.clone()));
        }

        for (reader, objects) in &pinned {
            assert_snapshot_matches(reader, objects, &base.domain, 59)
                .unwrap_or_else(|e| panic!("{label}: {e:?}"));
        }
    }
}

#[test]
fn single_object_commit_copies_a_bounded_number_of_pages() {
    let base = seed_db(500, 3, 9);
    let db = Db::new(PvIndex::build(&base, PvParams::default()));
    let device_pages = db.reader().engine().pager().live_pages();
    assert!(device_pages > 50, "workload too small to witness sharing");

    let mut rng = StdRng::seed_from_u64(77);
    let mut max_copies = 0u64;
    for k in 0..10u64 {
        // Alternate an insert and a remove of the same object: each is one
        // single-object commit on a fresh fork.
        let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(20.0..120.0)).collect();
        let hi: Vec<f64> = lo.iter().map(|l| l + 4.0).collect();
        let o = UncertainObject::uniform(20_000 + k, pv_suite::geom::HyperRect::new(lo, hi), 8);
        db.insert(o).expect("fresh id");
        let copies = db.reader().engine().pager().cow_copies();
        max_copies = max_copies.max(copies);
        db.remove(20_000 + k).expect("known id");
        max_copies = max_copies.max(db.reader().engine().pager().cow_copies());
    }

    // The copy counter is zeroed by each fork, so it reports exactly the
    // pages the one commit physically duplicated. A single-object commit
    // touches its secondary bucket plus the octree leaves the object's UBR
    // overlaps (and those of the few affected neighbours) — a sliver of the
    // device, not a deep copy of it.
    assert!(max_copies > 0, "a commit must write at least one page");
    assert!(
        (max_copies as usize) < device_pages / 4,
        "single-object commit copied {max_copies} of {device_pages} pages — \
         that is a deep clone, not structural sharing"
    );
}

#[test]
fn commit_leaves_the_previous_snapshot_device_shared() {
    // Direct witness of sharing between two adjacent versions: pin the old
    // head, commit once, and count how much of the new head's device still
    // aliases the old one.
    let base = seed_db(400, 2, 21);
    let db = Db::new(PvIndex::build(&base, PvParams::default()));
    let old = db.reader();
    let old_pages = old.engine().pager().live_pages();

    let o = UncertainObject::uniform(
        30_000,
        pv_suite::geom::HyperRect::new(vec![50.0, 50.0], vec![55.0, 55.0]),
        8,
    );
    db.insert(o).expect("fresh id");
    let new = db.reader();
    assert!(new.version() > old.version());

    let shared = new.engine().pager().shared_pages();
    assert!(
        shared * 2 > old_pages,
        "only {shared} of {old_pages} pages stayed shared after one commit"
    );
}
