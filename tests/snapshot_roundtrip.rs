//! Snapshot robustness across all four engines:
//!
//! * a saved-then-loaded index answers **byte-identically** to the freshly
//!   built one on the `answer_semantics` workloads (PV-index, R-tree
//!   baseline, UV-index; the linear scan persists through the dataset file);
//! * loading is dramatically cheaper than building (the warm-restart
//!   acceptance bar is 5×);
//! * truncated and bit-flipped snapshot files surface `DecodeError` — never
//!   a panic (proptest over cut points and flip positions).

use proptest::prelude::*;
use pv_suite::core::baseline::RTreeBaseline;
use pv_suite::core::snapshot::{
    pv_index_from_bytes, pv_index_to_bytes, rtree_baseline_from_bytes, rtree_baseline_to_bytes,
};
use pv_suite::core::{LinearScan, ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::geom::Point;
use pv_suite::uncertain::{persist, UncertainDb};
use pv_suite::uvindex::{UvIndex, UvParams};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};
use std::sync::OnceLock;

fn db2d(n: usize, seed: u64) -> UncertainDb {
    synthetic(&SyntheticConfig {
        n,
        dim: 2,
        max_side: 150.0,
        samples: 16,
        seed,
    })
}

/// The specs `tests/answer_semantics.rs` exercises, minus the batch layer
/// (batch equals sequential by that suite; roundtripping per-query suffices).
fn specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new(),
        QuerySpec::new().with_step1_only(),
        QuerySpec::new().with_threshold(0.02),
        QuerySpec::new().with_threshold(0.3),
        QuerySpec::new().with_top_k(1),
        QuerySpec::new().with_top_k(5),
    ]
}

fn assert_identical<E: ProbNnEngine>(built: &E, loaded: &E, qs: &[Point]) {
    for q in qs {
        for spec in specs() {
            let a = built.execute(q, &spec).expect("query");
            let b = loaded.execute(q, &spec).expect("query");
            assert_eq!(
                a.candidates,
                b.candidates,
                "{}: candidates diverged at {q:?}",
                built.engine_name()
            );
            assert_eq!(
                a.answers,
                b.answers,
                "{}: answers diverged at {q:?} under {spec:?}",
                built.engine_name()
            );
        }
    }
}

#[test]
fn pv_index_roundtrips_identically() {
    let db = db2d(250, 71); // same workload as answer_semantics
    let index = PvIndex::build(&db, PvParams::default());
    let loaded = pv_index_from_bytes(&pv_index_to_bytes(&index)).unwrap();
    assert_identical(&index, &loaded, &queries::uniform(&db.domain, 25, 5));
}

#[test]
fn save_bytes_are_canonical_across_cow_fork_history() {
    // Since PR 6, `WritableEngine::fork` shares pages between versions via
    // copy-on-write instead of round-tripping through the codec. The saved
    // byte stream must stay canonical regardless: sharing is a physical
    // artifact, never a logical one.
    use pv_suite::core::WritableEngine;
    use pv_suite::geom::HyperRect;
    use pv_suite::uncertain::UncertainObject;

    let db = db2d(250, 71);
    let index = PvIndex::build(&db, PvParams::default());
    let bytes0 = pv_index_to_bytes(&index);

    // An unmutated fork serializes byte-identically to its parent — the
    // shared pages dump the same image.
    let untouched = index.fork();
    assert_eq!(
        pv_index_to_bytes(&untouched),
        bytes0,
        "an unmutated COW fork must serialize byte-identically to its parent"
    );

    // Commit mutations on a fork: the parent's save bytes must not move —
    // no COW write may leak through a shared page into the old version.
    let mut forked = index.fork();
    forked
        .insert(UncertainObject::uniform(
            80_000,
            HyperRect::new(vec![30.0, 30.0], vec![34.0, 34.0]),
            16,
        ))
        .expect("fresh id");
    forked.remove(3).expect("seed id");
    assert_eq!(
        pv_index_to_bytes(&index),
        bytes0,
        "committing on a fork altered the parent's save bytes"
    );

    // Rollback-equivalent sequence: undo the mutations on the fork and the
    // *logical* state round-trips — the reloaded fork answers identically
    // to the pristine index (physical page layout may differ, so we compare
    // semantics, the contract the codec actually promises).
    forked.remove(80_000).expect("just inserted");
    forked
        .insert(db.objects.iter().find(|o| o.id == 3).unwrap().clone())
        .expect("restoring the seed object");
    let reloaded = pv_index_from_bytes(&pv_index_to_bytes(&forked)).unwrap();
    assert_identical(&index, &reloaded, &queries::uniform(&db.domain, 25, 5));
}

#[test]
fn rtree_baseline_roundtrips_identically() {
    let db = db2d(250, 71);
    let params = PvParams::default();
    let baseline = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);
    let loaded = rtree_baseline_from_bytes(&rtree_baseline_to_bytes(&baseline)).unwrap();
    assert_identical(&baseline, &loaded, &queries::uniform(&db.domain, 25, 5));
}

#[test]
fn uv_index_roundtrips_identically() {
    let db = db2d(200, 72);
    let uv = UvIndex::build(&db, UvParams::default());
    let loaded = UvIndex::from_snapshot_bytes(&uv.to_snapshot_bytes()).unwrap();
    assert_identical(&uv, &loaded, &queries::uniform(&db.domain, 20, 6));
}

#[test]
fn linear_scan_roundtrips_through_dataset_persistence() {
    let db = db2d(250, 73);
    let scan = LinearScan::new(&db);
    let reloaded_db = persist::from_bytes(&persist::to_bytes(&db)).unwrap();
    let loaded = LinearScan::new(&reloaded_db);
    assert_identical(&scan, &loaded, &queries::uniform(&db.domain, 25, 7));
}

#[test]
fn load_is_at_least_5x_faster_than_build() {
    // The acceptance bar for the warm-restart story, at the answer-semantics
    // workload scale. Build pays one SE run per object; load only decodes.
    let db = db2d(1_500, 74);
    let t0 = std::time::Instant::now();
    let index = PvIndex::build(&db, PvParams::default());
    let build_time = t0.elapsed();
    let bytes = pv_index_to_bytes(&index);
    let t0 = std::time::Instant::now();
    let loaded = pv_index_from_bytes(&bytes).unwrap();
    let load_time = t0.elapsed();
    assert_eq!(loaded.len(), index.len());
    assert!(
        load_time.as_secs_f64() * 5.0 < build_time.as_secs_f64(),
        "load {load_time:?} is not 5x faster than build {build_time:?}"
    );
}

/// One snapshot, built once, shared by every corruption case.
fn snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let db = db2d(60, 75);
        pv_index_to_bytes(&PvIndex::build(&db, PvParams::default()))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at any point is an error, never a panic.
    #[test]
    fn truncated_snapshots_return_decode_error(frac in 0.0f64..1.0) {
        let bytes = snapshot_bytes();
        let cut = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        prop_assert!(pv_index_from_bytes(&bytes[..cut]).is_err());
    }

    /// A single flipped bit anywhere is an error (the envelope checksum
    /// covers header and payload alike), never a panic.
    #[test]
    fn bit_flipped_snapshots_return_decode_error(pos in 0usize..(1 << 30), bit in 0u8..8) {
        let mut bytes = snapshot_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        prop_assert!(pv_index_from_bytes(&bytes).is_err());
    }

    /// Random garbage of any size is an error, never a panic.
    #[test]
    fn garbage_returns_decode_error(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert!(pv_index_from_bytes(&bytes).is_err());
    }
}
