//! Incremental-maintenance soundness (§VI-B): after arbitrary interleavings
//! of insertions and deletions, the incrementally maintained PV-index must
//! answer Step 1 exactly like a naive scan and like a freshly rebuilt index.
//! This also regression-tests the Lemma-8 erratum fix (see DESIGN.md §1).

use pv_suite::core::{verify, PvIndex, PvParams, Step1Engine};
use pv_suite::geom::HyperRect;
use pv_suite::uncertain::{UncertainDb, UncertainObject};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn check(index: &PvIndex, shadow: &[UncertainObject], seed: u64, n_queries: usize) {
    for q in queries::uniform(index.domain(), n_queries, seed) {
        let (got, _) = index.step1(&q);
        let want = verify::possible_nn(shadow.iter(), &q);
        assert_eq!(got, want, "q = {q:?}");
    }
}

#[test]
fn deletion_storm() {
    let db = synthetic(&SyntheticConfig {
        n: 250,
        dim: 2,
        max_side: 200.0,
        samples: 8,
        seed: 21,
    });
    let mut index = PvIndex::build(&db, PvParams::default());
    let mut shadow = db.objects.clone();
    let mut rng = StdRng::seed_from_u64(42);
    for round in 0..10 {
        for _ in 0..12 {
            let pos = rng.gen_range(0..shadow.len());
            let id = shadow.swap_remove(pos).id;
            let st = index.remove(id).expect("present");
            assert!(st.time.as_nanos() > 0);
        }
        check(&index, &shadow, 100 + round, 10);
    }
    assert_eq!(index.len(), shadow.len());
}

#[test]
fn insertion_storm() {
    let db = synthetic(&SyntheticConfig {
        n: 80,
        dim: 2,
        max_side: 200.0,
        samples: 8,
        seed: 22,
    });
    let mut index = PvIndex::build(&db, PvParams::default());
    let mut shadow = db.objects.clone();
    let extra = synthetic(&SyntheticConfig {
        n: 120,
        dim: 2,
        max_side: 200.0,
        samples: 8,
        seed: 2222,
    });
    for (round, o) in extra.objects.into_iter().enumerate() {
        let mut o = o;
        o.id = 70_000 + round as u64;
        shadow.push(o.clone());
        index.insert(o).expect("fresh id");
        if round % 20 == 19 {
            check(&index, &shadow, 200 + round as u64, 8);
        }
    }
    assert_eq!(index.len(), shadow.len());
}

#[test]
fn mixed_churn_3d() {
    let db = synthetic(&SyntheticConfig {
        n: 150,
        dim: 3,
        max_side: 400.0,
        samples: 8,
        seed: 23,
    });
    let mut index = PvIndex::build(&db, PvParams::default());
    let mut shadow = db.objects.clone();
    let mut rng = StdRng::seed_from_u64(77);
    let mut next_id = 90_000u64;
    for round in 0..30 {
        if rng.gen_bool(0.5) && shadow.len() > 10 {
            let pos = rng.gen_range(0..shadow.len());
            let id = shadow.swap_remove(pos).id;
            index.remove(id).expect("present");
        } else {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..9_500.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(1.0..400.0)).collect();
            let o = UncertainObject::uniform(next_id, HyperRect::new(lo, hi), 8);
            next_id += 1;
            shadow.push(o.clone());
            index.insert(o).expect("fresh id");
        }
        if round % 6 == 5 {
            check(&index, &shadow, 300 + round, 6);
        }
    }
}

#[test]
fn incremental_matches_rebuild_after_churn() {
    let db = synthetic(&SyntheticConfig {
        n: 180,
        dim: 2,
        max_side: 250.0,
        samples: 8,
        seed: 24,
    });
    let mut index = PvIndex::build(&db, PvParams::default());
    let mut shadow = db.objects.clone();
    let mut rng = StdRng::seed_from_u64(7);
    // churn
    for i in 0..40u64 {
        if i % 2 == 0 && shadow.len() > 20 {
            let pos = rng.gen_range(0..shadow.len());
            let id = shadow.swap_remove(pos).id;
            index.remove(id).unwrap();
        } else {
            let lo: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..9_700.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + rng.gen_range(1.0..250.0)).collect();
            let o = UncertainObject::uniform(80_000 + i, HyperRect::new(lo, hi), 8);
            shadow.push(o.clone());
            index.insert(o).expect("fresh id");
        }
    }
    // fresh rebuild over the same final object set
    let fresh_db = UncertainDb::new(index.domain().clone(), shadow.clone());
    let fresh = PvIndex::build(&fresh_db, PvParams::default());
    for q in queries::uniform(index.domain(), 40, 99) {
        let (a, _) = index.step1(&q);
        let (b, _) = fresh.step1(&q);
        assert_eq!(a, b, "incremental index diverged from a rebuild");
    }
}

#[test]
fn delete_then_reinsert_round_trip() {
    let db = synthetic(&SyntheticConfig {
        n: 150,
        dim: 2,
        max_side: 250.0,
        samples: 8,
        seed: 25,
    });
    let mut index = PvIndex::build(&db, PvParams::default());
    let victims: Vec<UncertainObject> = db.objects[40..60].to_vec();
    for v in &victims {
        index.remove(v.id).unwrap();
    }
    for v in &victims {
        index.insert(v.clone()).expect("re-insert");
    }
    check(&index, &db.objects, 555, 25);
}

#[test]
fn update_stats_report_work() {
    let db = synthetic(&SyntheticConfig {
        n: 200,
        dim: 2,
        max_side: 300.0,
        samples: 8,
        seed: 26,
    });
    let mut index = PvIndex::build(&db, PvParams::default());
    let st = index.remove(100).unwrap();
    // With |u(o)| = 300 the UBRs overlap heavily: a deletion should touch
    // at least one neighbor.
    assert!(st.scanned >= st.affected);
    let o = UncertainObject::uniform(
        99_999,
        HyperRect::new(vec![5_000.0, 5_000.0], vec![5_100.0, 5_100.0]),
        8,
    );
    let st = index.insert(o).expect("fresh id");
    assert!(st.se.slab_tests > 0, "insertion must run SE");
}

#[test]
fn overlapping_neighbors_are_unaffected_by_update() {
    // Lemma 8(3) with the erratum fix: objects whose uncertainty regions
    // overlap the updated object's region keep their UBRs untouched.
    let domain = HyperRect::cube(2, 0.0, 1_000.0);
    let a = UncertainObject::uniform(1, HyperRect::new(vec![100.0, 100.0], vec![140.0, 140.0]), 8);
    let b = UncertainObject::uniform(2, HyperRect::new(vec![120.0, 120.0], vec![160.0, 160.0]), 8); // overlaps a
    let c = UncertainObject::uniform(3, HyperRect::new(vec![700.0, 700.0], vec![720.0, 720.0]), 8);
    let db = UncertainDb::new(domain, vec![a.clone(), b.clone(), c]);
    let mut index = PvIndex::build(&db, PvParams::default());
    let ubr_b_before = index.ubr(2).unwrap().clone();
    // Delete a (overlaps b): b must be classified unaffected. The far-away
    // c, in contrast, may legitimately be recomputed — with only three
    // objects, removing a really can grow c's PV-cell.
    let st = index.remove(1).unwrap();
    assert_eq!(
        index.ubr(2).unwrap(),
        &ubr_b_before,
        "b's UBR must not change"
    );
    assert!(
        st.affected <= 1,
        "only c may be recomputed, got {}",
        st.affected
    );
    // queries remain exact
    let shadow = vec![b, db.objects[2].clone()];
    check(&index, &shadow, 777, 15);
}
