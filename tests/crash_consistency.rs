//! Crash-consistency torture harness for the durable layer (PR 9).
//!
//! The contract under test: after *any* crash, recovery yields exactly the
//! state of some acknowledged-prefix version — never a torn hybrid, never a
//! state that drops an acknowledged-and-fsynced commit, and never a guess
//! when the damage is not a crash signature.
//!
//! * **Every-byte WAL cuts** (proptest, dims 2–4): run a random
//!   insert/remove commit sequence against a `DurableDb<PvIndex>`,
//!   recording each acknowledged version's object set and canonical
//!   snapshot bytes. Then replay the crash at *every byte prefix* of the
//!   WAL: recovery must succeed, land on an acknowledged version, lose no
//!   commit whose bytes were fully on disk at the cut, and reproduce that
//!   version's engine byte-for-byte.
//! * **Acknowledged states answer like the ground truth**: every recorded
//!   version is cross-checked against a `LinearScan` over its object set,
//!   so the byte-equality above transfers query correctness to every
//!   recovery outcome.
//! * **Snapshot damage fails closed**: truncated or bit-flipped snapshot
//!   generations yield typed `RecoveryError`s, not silently empty
//!   databases; mid-log corruption reports the last durable version.
//! * **Live torn writes**: a `FaultFs`-injected torn append makes the
//!   commit fail *without* acknowledging, the database stays usable, and
//!   a post-crash reopen recovers every acknowledged commit.
//!
//! The vendored proptest runner is deterministic; `PROPTEST_CASES` scales
//! the sweep for the scheduled deep-fuzz job.

use proptest::prelude::*;
use pv_suite::core::durable::{DurableDb, DurableOptions, SyncPolicy};
use pv_suite::core::{
    LinearScan, PersistentEngine, ProbNnEngine, PvIndex, PvParams, QuerySpec, RecoveryError,
};
use pv_suite::storage::wal::{WalError, WAL_HEADER_LEN};
use pv_suite::storage::{FaultFs, FaultKind, FaultPlan, Fs, ScheduledFault, StdFs};
use pv_suite::uncertain::{UncertainDb, UncertainObject};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

/// Case count: small in the normal CI job, scaled by `PROPTEST_CASES` in
/// the scheduled deep-fuzz job.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

fn seed_db(n: usize, dim: usize, seed: u64) -> UncertainDb {
    synthetic(&SyntheticConfig {
        n,
        dim,
        max_side: 150.0,
        samples: 6,
        seed,
    })
}

/// No compaction, fsync on every commit: the WAL holds the whole history
/// and every acknowledgement is a durability promise the cuts can test.
fn opts() -> DurableOptions {
    DurableOptions {
        sync: SyncPolicy::EveryCommit,
        compact_after_commits: u64::MAX,
        compact_after_bytes: u64::MAX,
        ..DurableOptions::default()
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pv_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// One acknowledged version: its object set, its engine's canonical
/// snapshot bytes, and the WAL length at which its commit was fsynced.
struct Acked {
    objects: Vec<UncertainObject>,
    snapshot: Vec<u8>,
    durable_at: u64,
}

/// Runs `steps` random commits against a fresh durable PvIndex in `dir`,
/// returning the per-version acknowledgement record (index = version).
fn run_commits(
    dir: &PathBuf,
    base: &UncertainDb,
    pool: Vec<UncertainObject>,
    steps: usize,
    rng: &mut StdRng,
) -> Vec<Acked> {
    let db = DurableDb::create(dir, PvIndex::build(base, PvParams::default()), opts()).unwrap();
    let mut shadow = base.objects.clone();
    let mut acked = vec![Acked {
        objects: shadow.clone(),
        snapshot: db.db().reader().engine().snapshot_bytes().unwrap(),
        durable_at: db.wal_bytes(),
    }];
    let mut fresh = pool.into_iter();
    for k in 0..steps {
        let do_remove = !shadow.is_empty() && rng.gen_bool(0.35);
        let commit = if do_remove {
            let victim = shadow[rng.gen_range(0..shadow.len())].id;
            shadow.retain(|o| o.id != victim);
            db.remove(victim).unwrap()
        } else {
            let mut o = fresh.next().expect("pool sized to steps");
            o.id = 10_000 + k as u64;
            shadow.push(o.clone());
            db.insert(o).unwrap()
        };
        assert!(commit.synced, "EveryCommit must fsync before acknowledging");
        assert!(commit.compaction_error.is_none());
        assert_eq!(commit.version, (k + 1) as u64);
        acked.push(Acked {
            objects: shadow.clone(),
            snapshot: db.db().reader().engine().snapshot_bytes().unwrap(),
            durable_at: db.wal_bytes(),
        });
    }
    acked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The tentpole guarantee, exhaustively: cut the WAL at every byte
    /// prefix and recover. Each cut must land on an acknowledged version,
    /// keep every commit fully durable at the cut, and rebuild that
    /// version's engine byte-for-byte.
    #[test]
    fn every_wal_byte_cut_recovers_an_acknowledged_version(
        dim in 2usize..=4,
        seed in 0u64..1_000,
        steps in 4usize..=8,
    ) {
        let base = seed_db(10, dim, 900 + seed);
        let pool = seed_db(steps, dim, 5_000 + seed).objects;
        let mut rng = StdRng::seed_from_u64((seed << 8) | dim as u64);

        let live = fresh_dir(&format!("live_{dim}_{seed}"));
        let acked = run_commits(&live, &base, pool, steps, &mut rng);
        let wal_bytes = std::fs::read(live.join("wal")).unwrap();
        let snap_bytes = std::fs::read(live.join("snap.0.pvix")).unwrap();
        prop_assert_eq!(wal_bytes.len() as u64, acked.last().unwrap().durable_at);

        // Every acknowledged state answers exactly like the ground truth,
        // so the byte-equality below carries query correctness with it.
        let specs = [
            QuerySpec::new(),
            QuerySpec::new().with_top_k(3),
            QuerySpec::new().with_threshold(0.05),
        ];
        for (v, a) in acked.iter().enumerate() {
            let engine = PvIndex::from_snapshot_bytes(&a.snapshot).unwrap();
            let scan = LinearScan::new(&UncertainDb::new(base.domain.clone(), a.objects.clone()));
            for q in queries::uniform(&base.domain, 4, 77 + seed) {
                for spec in &specs {
                    let got = engine.execute(&q, spec).expect("recovered query");
                    let want = scan.execute(&q, spec).expect("ground truth");
                    prop_assert_eq!(
                        &got.answers, &want.answers,
                        "acknowledged v{} diverges from LinearScan at {:?} under {:?}",
                        v, &q, spec
                    );
                }
            }
        }

        // The crash sweep. The WAL file header is written and fsynced by
        // `create` before any commit is acknowledged, so cuts start there.
        let crash = fresh_dir(&format!("cut_{dim}_{seed}"));
        for cut in (WAL_HEADER_LEN as usize)..=wal_bytes.len() {
            std::fs::write(crash.join("snap.0.pvix"), &snap_bytes).unwrap();
            std::fs::write(crash.join("wal"), &wal_bytes[..cut]).unwrap();
            let (rdb, report) = DurableDb::<PvIndex>::open(&crash, opts())
                .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got: {e}"));
            let v = report.recovered_version as usize;
            prop_assert!(v < acked.len(), "cut {} recovered unknown v{}", cut, v);
            // Zero lost acknowledged-and-fsynced commits: every version
            // whose acknowledgement point lies within the cut survives.
            let required = acked.iter().rposition(|a| a.durable_at <= cut as u64).unwrap();
            prop_assert!(
                v >= required,
                "cut {} lost acknowledged commits: recovered v{}, v{} was durable",
                cut, v, required
            );
            let got = rdb.db().reader().engine().snapshot_bytes().unwrap();
            prop_assert_eq!(
                &got, &acked[v].snapshot,
                "cut {} recovered v{} but its bytes differ from the acknowledged state",
                cut, v
            );
        }

        std::fs::remove_dir_all(&live).unwrap();
        std::fs::remove_dir_all(&crash).unwrap();
    }
}

/// Snapshot-generation damage is never papered over: a truncated or
/// bit-flipped `snap.<v>.pvix` fails recovery closed with the typed
/// [`RecoveryError::Snapshot`] chain, and a missing directory reports
/// [`RecoveryError::MissingGeneration`].
#[test]
fn damaged_snapshot_fails_closed() {
    let base = seed_db(10, 3, 42);
    let pool = seed_db(3, 3, 5_042).objects;
    let mut rng = StdRng::seed_from_u64(42);
    let dir = fresh_dir("snapdmg");
    let _ = run_commits(&dir, &base, pool, 3, &mut rng);
    let snap = std::fs::read(dir.join("snap.0.pvix")).unwrap();

    for cut in [0, 1, snap.len() / 4, snap.len() / 2, snap.len() - 1] {
        std::fs::write(dir.join("snap.0.pvix"), &snap[..cut]).unwrap();
        match DurableDb::<PvIndex>::open(&dir, opts()) {
            Err(RecoveryError::Snapshot { path, .. }) => {
                assert!(path.ends_with("snap.0.pvix"), "wrong path: {path:?}");
            }
            Err(other) => panic!("snapshot cut {cut}: wrong error: {other}"),
            Ok(_) => panic!("snapshot cut {cut} must not recover"),
        }
    }

    let mut flipped = snap.clone();
    flipped[snap.len() / 2] ^= 0x10;
    std::fs::write(dir.join("snap.0.pvix"), &flipped).unwrap();
    assert!(
        matches!(
            DurableDb::<PvIndex>::open(&dir, opts()),
            Err(RecoveryError::Snapshot { .. })
        ),
        "bit-flipped snapshot must fail closed"
    );

    std::fs::remove_dir_all(&dir).unwrap();
    match DurableDb::<PvIndex>::open(&dir, opts()) {
        Err(RecoveryError::Io(_)) | Err(RecoveryError::MissingGeneration { .. }) => {}
        other => panic!("missing dir: unexpected outcome: {other:?}"),
    }
}

/// Mid-log corruption (a bit flip inside a fully-written record, with more
/// records after it) is *not* a crash signature: recovery must refuse with
/// [`WalError::Corrupt`] and report the last version readable before the
/// damage, rather than silently truncating history.
#[test]
fn mid_log_bit_flip_reports_last_durable_version() {
    let base = seed_db(10, 2, 7);
    let pool = seed_db(3, 2, 5_007).objects;
    let mut rng = StdRng::seed_from_u64(7);
    let dir = fresh_dir("midlog");
    let acked = run_commits(&dir, &base, pool, 3, &mut rng);

    // Flip a byte in commit record 2's body: the record after commit 1's
    // fsync point, well before EOF (commit 3 and its marker follow).
    let mut wal = std::fs::read(dir.join("wal")).unwrap();
    let rec2_start = acked[1].durable_at as usize;
    wal[rec2_start + 30] ^= 0x08; // 24-byte header + a few body bytes in
    std::fs::write(dir.join("wal"), &wal).unwrap();

    match DurableDb::<PvIndex>::open(&dir, opts()) {
        Err(RecoveryError::Log(WalError::Corrupt {
            last_durable_version,
            ..
        })) => assert_eq!(
            last_durable_version, 1,
            "corruption in record 2 leaves v1 as the last durable version"
        ),
        other => panic!("mid-log corruption: unexpected outcome: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A torn write during a live commit: the commit must fail without
/// acknowledging, the database must remain usable for further commits,
/// and a post-crash reopen must recover every acknowledged commit.
#[test]
fn live_torn_append_is_unacknowledged_and_recoverable() {
    let base = seed_db(10, 2, 11);
    let pool = seed_db(4, 2, 5_011).objects;
    let dir = fresh_dir("livetorn");

    let ffs = Arc::new(FaultFs::new(StdFs, FaultPlan::none()));
    let fs: Arc<dyn Fs> = ffs.clone();
    let db =
        DurableDb::create_with_fs(fs, &dir, PvIndex::build(&base, PvParams::default()), opts())
            .unwrap();

    let mut objs = pool.into_iter();
    let mut o1 = objs.next().unwrap();
    o1.id = 10_001;
    let c1 = db.insert(o1.clone()).unwrap();
    assert!(c1.synced);

    // Tear the WAL append of commit 2. The append is preceded by a length
    // probe (and possibly a truncate), where a TornWrite passes through
    // harmlessly — so arm the next few operations and let the append be
    // the one that tears.
    let mut o2 = objs.next().unwrap();
    o2.id = 10_002;
    let next = ffs.ops();
    ffs.set_plan(FaultPlan::new(
        (next..next + 3)
            .map(|op| ScheduledFault {
                op,
                kind: FaultKind::TornWrite { keep: 10 },
            })
            .collect(),
    ));
    let err = db.insert(o2.clone()).unwrap_err();
    assert!(
        !ffs.fired().is_empty(),
        "the scheduled torn write must have fired: {err}"
    );
    ffs.set_plan(FaultPlan::none());
    assert_eq!(db.db().version(), 1, "a failed commit must not publish");
    assert!(!db.is_poisoned(), "rolled-back torn append must not poison");

    // The database remains usable: the same logical update goes through.
    let c2 = db.insert(o2).unwrap();
    assert_eq!(c2.version, 2);
    let expected = db.db().reader().engine().snapshot_bytes().unwrap();
    drop(db);

    // Crash-and-reopen from plain disk: both acknowledged commits survive.
    let (rdb, report) = DurableDb::<PvIndex>::open(&dir, opts()).unwrap();
    assert_eq!(report.recovered_version, 2);
    assert_eq!(report.replayed_commits, 2);
    assert_eq!(
        rdb.db().reader().engine().snapshot_bytes().unwrap(),
        expected,
        "recovery after a rolled-back torn write must match the live state"
    );
    drop(rdb);
    std::fs::remove_dir_all(&dir).unwrap();
}
