//! End-to-end Step-1 equivalence: PV-index ≡ R-tree branch-and-prune ≡
//! naive scan, across dimensionalities, cset strategies and dataset shapes.

use pv_suite::core::baseline::RTreeBaseline;
use pv_suite::core::{verify, PvIndex, PvParams, Step1Engine};
use pv_suite::workload::{queries, realistic, synthetic, SyntheticConfig};

fn assert_equivalent(db: &pv_suite::uncertain::UncertainDb, params: PvParams, n_queries: usize) {
    let index = PvIndex::build(db, params);
    let baseline = RTreeBaseline::build(db, params.rtree_fanout, params.page_size);
    for q in queries::uniform(&db.domain, n_queries, 0xBEEF) {
        let want = verify::possible_nn(db.objects.iter(), &q);
        let (pv, _) = index.step1(&q);
        let (rt, _) = baseline.step1(&q);
        assert_eq!(pv, want, "PV-index differs from naive at {q:?}");
        assert_eq!(rt, want, "R-tree differs from naive at {q:?}");
    }
}

#[test]
fn synthetic_2d_default_params() {
    let db = synthetic(&SyntheticConfig {
        n: 400,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 1,
    });
    assert_equivalent(&db, PvParams::default(), 40);
}

#[test]
fn synthetic_3d_default_params() {
    let db = synthetic(&SyntheticConfig {
        n: 300,
        dim: 3,
        max_side: 300.0,
        samples: 8,
        seed: 2,
    });
    assert_equivalent(&db, PvParams::default(), 25);
}

#[test]
fn synthetic_4d_default_params() {
    let db = synthetic(&SyntheticConfig {
        n: 200,
        dim: 4,
        max_side: 400.0,
        samples: 8,
        seed: 3,
    });
    assert_equivalent(&db, PvParams::default(), 15);
}

#[test]
fn synthetic_5d_default_params() {
    let db = synthetic(&SyntheticConfig {
        n: 150,
        dim: 5,
        max_side: 500.0,
        samples: 8,
        seed: 4,
    });
    assert_equivalent(&db, PvParams::default(), 10);
}

#[test]
fn fs_strategy_equivalence() {
    let db = synthetic(&SyntheticConfig {
        n: 300,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 5,
    });
    assert_equivalent(&db, PvParams::with_fs(60), 30);
}

#[test]
fn all_strategy_equivalence() {
    // ALL is slow; keep the database tiny.
    let db = synthetic(&SyntheticConfig {
        n: 120,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 6,
    });
    assert_equivalent(&db, PvParams::with_all(), 20);
}

#[test]
fn coarse_delta_is_still_exact() {
    // A loose UBR may admit more candidates but the min/max filter keeps
    // Step 1 exact.
    let db = synthetic(&SyntheticConfig {
        n: 300,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 7,
    });
    let params = PvParams {
        delta: 500.0,
        ..Default::default()
    };
    assert_equivalent(&db, params, 30);
}

#[test]
fn tiny_mmax_is_still_exact() {
    let db = synthetic(&SyntheticConfig {
        n: 250,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 8,
    });
    let params = PvParams {
        mmax: 2,
        ..Default::default()
    };
    assert_equivalent(&db, params, 25);
}

#[test]
fn roads_dataset_equivalence() {
    let db = realistic::roads(400, 9);
    assert_equivalent(&db, PvParams::default(), 25);
}

#[test]
fn rrlines_dataset_equivalence() {
    let db = realistic::rrlines(400, 10);
    assert_equivalent(&db, PvParams::default(), 25);
}

#[test]
fn airports_dataset_equivalence() {
    let db = realistic::airports(400, 11);
    assert_equivalent(&db, PvParams::default(), 25);
}

#[test]
fn degenerate_single_object() {
    let db = synthetic(&SyntheticConfig {
        n: 1,
        dim: 2,
        max_side: 50.0,
        samples: 8,
        seed: 12,
    });
    assert_equivalent(&db, PvParams::default(), 10);
}

#[test]
fn two_objects() {
    let db = synthetic(&SyntheticConfig {
        n: 2,
        dim: 3,
        max_side: 50.0,
        samples: 8,
        seed: 13,
    });
    assert_equivalent(&db, PvParams::default(), 10);
}
