//! Answer-semantics laws of the unified query API, checked across all four
//! engines (PV-index, R-tree baseline, UV-index, linear scan):
//!
//! * raising `threshold` yields a subset of the answers;
//! * `top_k(k)` is a prefix of `top_k(k + 1)`;
//! * both agree with the `LinearScan` ground truth (exactly for the exact
//!   engines, at high recall for the approximate UV-index);
//! * `query_batch` (sequential and parallel) matches per-query execution;
//! * Step-2 early termination never changes a reported probability.

use pv_suite::core::baseline::RTreeBaseline;
use pv_suite::core::{verify, LinearScan, ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::geom::Point;
use pv_suite::uncertain::UncertainDb;
use pv_suite::uvindex::{UvIndex, UvParams};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};

const TAUS: [f64; 5] = [0.0, 0.02, 0.1, 0.3, 0.7];

fn db2d(n: usize, seed: u64) -> UncertainDb {
    synthetic(&SyntheticConfig {
        n,
        dim: 2,
        max_side: 150.0,
        samples: 16,
        seed,
    })
}

fn workload(db: &UncertainDb, m: usize, seed: u64) -> Vec<Point> {
    queries::uniform(&db.domain, m, seed)
}

/// The internal laws every engine must satisfy, exact or not.
fn check_internal_laws<E: ProbNnEngine + Sync>(engine: &E, qs: &[Point]) {
    for q in qs {
        let default = engine.execute(q, &QuerySpec::new()).expect("query");
        let mut prev = default.answers.clone();
        prev.retain(|&(_, p)| p > 0.0);
        for tau in TAUS {
            let cur = engine
                .execute(q, &QuerySpec::new().with_threshold(tau))
                .expect("query")
                .answers;
            assert!(
                cur.iter().all(|a| prev.contains(a)),
                "{}: threshold({tau}) is not a subset at {q:?}",
                engine.engine_name()
            );
            prev = cur;
        }
        let mut prefix: Vec<(u64, f64)> = Vec::new();
        for k in 1..=6 {
            let cur = engine
                .execute(q, &QuerySpec::new().with_top_k(k))
                .expect("query")
                .answers;
            assert!(cur.len() <= k);
            assert_eq!(
                &cur[..prefix.len()],
                &prefix[..],
                "{}: top_k({k}) does not extend top_k({})",
                engine.engine_name(),
                k - 1
            );
            assert!(
                cur.iter().all(|&(_, p)| p > 0.0),
                "top-k answers must have positive probability"
            );
            prefix = cur;
        }
        // early termination may skip payloads but never changes probabilities
        let pruned = engine
            .execute(q, &QuerySpec::new().with_threshold(0.0))
            .expect("query");
        for &(id, p) in &pruned.answers {
            assert_eq!(
                default.answers.iter().find(|&&(aid, _)| aid == id),
                Some(&(id, p)),
                "{}: pruning changed P({id}) at {q:?}",
                engine.engine_name()
            );
        }
        assert!(pruned.stats.pc_io_reads <= default.stats.pc_io_reads);
    }
}

/// Exact engines must match the linear scan bit-for-bit under every spec.
fn check_against_ground_truth<E: ProbNnEngine + Sync>(
    engine: &E,
    scan: &LinearScan,
    db: &UncertainDb,
    qs: &[Point],
) {
    for q in qs {
        let want_ids = verify::possible_nn(db.objects.iter(), q);
        let step1 = engine
            .execute(q, &QuerySpec::new().with_step1_only())
            .expect("query");
        assert_eq!(
            step1.candidates,
            want_ids,
            "{}: step1 differs at {q:?}",
            engine.engine_name()
        );
        assert!(step1.answers.is_empty());
        assert_eq!(
            engine.execute(q, &QuerySpec::new()).expect("query").answers,
            scan.execute(q, &QuerySpec::new()).expect("query").answers,
            "{}: default answers differ at {q:?}",
            engine.engine_name()
        );
        for tau in TAUS {
            let spec = QuerySpec::new().with_threshold(tau);
            assert_eq!(
                engine.execute(q, &spec).expect("query").answers,
                scan.execute(q, &spec).expect("query").answers,
                "{}: threshold({tau}) differs at {q:?}",
                engine.engine_name()
            );
        }
        for k in [1usize, 3, 5] {
            let spec = QuerySpec::new().with_top_k(k);
            assert_eq!(
                engine.execute(q, &spec).expect("query").answers,
                scan.execute(q, &spec).expect("query").answers,
                "{}: top_k({k}) differs at {q:?}",
                engine.engine_name()
            );
        }
    }
}

/// Batched execution must equal per-query execution, at any thread count.
fn check_batch<E: ProbNnEngine + Sync>(engine: &E, qs: &[Point]) {
    let spec = QuerySpec::new().with_top_k(4);
    let seq = engine
        .query_batch(qs, &spec.clone().with_batch_threads(1))
        .expect("batch");
    let par = engine
        .query_batch(qs, &spec.clone().with_batch_threads(4))
        .expect("batch");
    assert_eq!(seq.stats.queries, qs.len());
    assert_eq!(par.stats.threads, 4.min(qs.len()));
    for (i, q) in qs.iter().enumerate() {
        let single = engine.execute(q, &spec).expect("query");
        assert_eq!(seq.outcomes[i].answers, single.answers);
        assert_eq!(par.outcomes[i].answers, single.answers);
        assert_eq!(seq.outcomes[i].candidates, single.candidates);
    }
    assert_eq!(
        seq.stats.answers,
        par.stats.answers,
        "{}: aggregate answer counts diverge",
        engine.engine_name()
    );
}

#[test]
fn exact_engines_satisfy_all_laws() {
    let db = db2d(250, 71);
    let params = PvParams::default();
    let pv = PvIndex::build(&db, params);
    let rt = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);
    let scan = LinearScan::with_page_size(&db, params.page_size);
    let qs = workload(&db, 25, 5);

    check_internal_laws(&pv, &qs);
    check_internal_laws(&rt, &qs);
    check_internal_laws(&scan, &qs);
    check_against_ground_truth(&pv, &scan, &db, &qs);
    check_against_ground_truth(&rt, &scan, &db, &qs);
    check_batch(&pv, &qs);
    check_batch(&rt, &qs);
    check_batch(&scan, &qs);
}

/// An approx-built PV-index (PR 8) is a fully *exact* engine: inflated UBRs
/// only admit extra Step-1 candidates, and Step 2 re-qualifies every one of
/// them — so it must pass the same laws and ground-truth checks as the
/// engines built with exact SE, not the UV-index's recall bound.
#[test]
fn approx_built_engine_satisfies_exact_laws() {
    let db = db2d(250, 74);
    let pv = PvIndex::build(&db, PvParams::default().approx_ubr(20.0));
    let scan = LinearScan::new(&db);
    let qs = workload(&db, 25, 8);

    check_internal_laws(&pv, &qs);
    check_against_ground_truth(&pv, &scan, &db, &qs);
    check_batch(&pv, &qs);
}

#[test]
fn uv_index_satisfies_laws_with_high_recall() {
    let db = db2d(250, 72);
    let uv = UvIndex::build(&db, UvParams::default());
    let scan = LinearScan::new(&db);
    let qs = workload(&db, 20, 6);

    check_internal_laws(&uv, &qs);
    check_batch(&uv, &qs);

    // The ray-marched UV cells are approximate; its thresholded answers
    // must still recall ≈ all of the ground truth's.
    let spec = QuerySpec::new().with_threshold(0.02);
    let mut found = 0usize;
    let mut expected = 0usize;
    for q in &qs {
        let want = scan.execute(q, &spec).expect("query").answer_ids();
        let got = uv.execute(q, &spec).expect("query").answer_ids();
        expected += want.len();
        found += want.iter().filter(|id| got.contains(id)).count();
    }
    let recall = found as f64 / expected.max(1) as f64;
    assert!(recall > 0.95, "UV thresholded recall {recall}");
}

#[test]
fn early_termination_saves_payload_io_somewhere() {
    // Over a whole workload the distmin-vs-cutoff skip must actually fire:
    // instances rarely touch their region's far corner, so some Step-1
    // candidate is provably irrelevant once its peers are fetched.
    let db = db2d(400, 73);
    let index = PvIndex::build(&db, PvParams::default());
    let mut skipped = 0usize;
    let mut io_pruned = 0u64;
    let mut io_full = 0u64;
    for q in workload(&db, 40, 7) {
        let full = index.execute(&q, &QuerySpec::new()).expect("query");
        let pruned = index
            .execute(&q, &QuerySpec::new().with_top_k(3))
            .expect("query");
        skipped += pruned.skipped_payloads;
        io_full += full.stats.pc_io_reads;
        io_pruned += pruned.stats.pc_io_reads;
    }
    assert!(
        skipped > 0,
        "expected early termination to skip at least one payload"
    );
    assert!(io_pruned < io_full, "pruning should save Step-2 I/O");
}
