//! Build-equivalence suite for the scalable construction pipeline (PR 8).
//!
//! The build has three independently swappable parts — work-stealing Phase-1
//! parallelism, bottom-up bulk loading of both disk structures, and the
//! opt-in approximate-UBR mode — and each one is only admissible if it is
//! *invisible* in the artifact. The lock is byte equality of canonical
//! snapshots: [`pv_index_to_bytes`] re-emits the disk image from the logical
//! state, so two builds serialise identically iff they agree on every UBR,
//! every octree split decision and every stored record.
//!
//! * **bulk ≡ legacy** (proptest, dims 2–4): the bottom-up bulk load must
//!   reproduce the per-object insertion build exactly;
//! * **parallel ≡ serial** (threads 2/4/8): the work-stealing scheduler's
//!   batch merge must make thread count unobservable;
//! * **approx soundness**: `approx_ubr(ε)` may inflate each stored UBR by at
//!   most ε per axis side, and never changes query answers;
//! * **worker panics are values**: a poisoned object surfaces as
//!   [`BuildError::WorkerPanicked`] from `try_build`, at any thread count.
//!
//! The vendored proptest runner is deterministic; `PROPTEST_CASES` scales
//! the case count for the scheduled deep-fuzz job (as in `cow_sharing.rs`).

use proptest::prelude::*;
use pv_suite::core::snapshot::pv_index_to_bytes;
use pv_suite::core::{BuildError, LinearScan, ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::uncertain::UncertainDb;
use pv_suite::workload::{queries, synthetic, SyntheticConfig};

/// Case count: small in the normal CI job (several builds per case), scaled
/// up by `PROPTEST_CASES` in the scheduled deep-fuzz job.
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

fn seed_db(n: usize, dim: usize, seed: u64) -> UncertainDb {
    synthetic(&SyntheticConfig {
        n,
        dim,
        max_side: 120.0,
        samples: 8,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The bottom-up bulk load (octree midpoint partitioning + one-shot hash
    /// directory sizing) must be byte-indistinguishable from the legacy
    /// per-object insertion build — including under UBR quantization, whose
    /// shorter records shift every page-fit decision.
    #[test]
    fn bulk_load_matches_legacy_insertion_bytes(
        dim in 2usize..=4,
        n in 40usize..=160,
        seed in 0u64..1_000,
        quantize in any::<bool>(),
    ) {
        let db = seed_db(n, dim, 7_000 + seed);
        let params = PvParams {
            ubr_quantize_steps: quantize.then_some(2_048u16),
            ..Default::default()
        };
        let bulk = PvIndex::build(&db, params);
        let legacy = PvIndex::build_legacy(&db, params);
        prop_assert_eq!(
            pv_index_to_bytes(&bulk),
            pv_index_to_bytes(&legacy),
            "bulk and legacy builds diverge (dim {}, n {}, seed {})",
            dim, n, seed
        );
    }

    /// Work-stealing workers race for object batches, so only the
    /// deterministic batch merge keeps thread count out of the artifact:
    /// every thread count must serialise to the serial build's bytes.
    #[test]
    fn parallel_build_matches_serial_bytes(
        dim in 2usize..=4,
        seed in 0u64..1_000,
    ) {
        let db = seed_db(90, dim, 11_000 + seed);
        let serial = pv_index_to_bytes(&PvIndex::build(&db, PvParams::default()));
        for threads in [2usize, 4, 8] {
            let params = PvParams {
                build_threads: threads,
                ..Default::default()
            };
            prop_assert_eq!(
                &pv_index_to_bytes(&PvIndex::build(&db, params)),
                &serial,
                "{}-thread build diverges from serial (dim {}, seed {})",
                threads, dim, seed
            );
        }
    }

    /// Approximate-UBR soundness: every approx UBR contains its exact
    /// counterpart (SE only *stops refining earlier*, it never cuts deeper),
    /// exceeds it by at most ε per axis side, and — because Step 2
    /// re-qualifies every candidate — answers stay identical to the ground
    /// truth on every spec.
    #[test]
    fn approx_mode_is_sound_and_answers_exactly(
        dim in 2usize..=3,
        seed in 0u64..1_000,
    ) {
        let epsilon = 25.0;
        let db = seed_db(70, dim, 15_000 + seed);
        let exact = PvIndex::build(&db, PvParams::default());
        let approx = PvIndex::build(&db, PvParams::default().approx_ubr(epsilon));

        for o in &db.objects {
            let e = exact.ubr(o.id).unwrap();
            let a = approx.ubr(o.id).unwrap();
            for d in 0..dim {
                prop_assert!(
                    a.lo()[d] <= e.lo()[d] + 1e-9 && a.hi()[d] >= e.hi()[d] - 1e-9,
                    "approx B({}) does not contain the exact UBR on axis {d}",
                    o.id
                );
                prop_assert!(
                    e.lo()[d] - a.lo()[d] <= epsilon + 1e-9
                        && a.hi()[d] - e.hi()[d] <= epsilon + 1e-9,
                    "approx B({}) exceeds the ε bound on axis {d}: exact [{}, {}], approx [{}, {}]",
                    o.id, e.lo()[d], e.hi()[d], a.lo()[d], a.hi()[d]
                );
            }
        }

        let scan = LinearScan::new(&db);
        let specs = [
            QuerySpec::new(),
            QuerySpec::new().with_top_k(3),
            QuerySpec::new().with_threshold(0.05),
        ];
        for q in queries::uniform(&db.domain, 8, 55 + seed) {
            for spec in &specs {
                prop_assert_eq!(
                    &approx.execute(&q, spec).expect("approx query").answers,
                    &scan.execute(&q, spec).expect("ground truth").answers,
                    "approx-built index diverges from LinearScan at {:?} under {:?}",
                    &q, spec
                );
            }
        }
    }
}

/// A panicking Phase-1 worker must come back as a typed error from
/// `try_build` — at every thread count, including the serial path — with the
/// panic message preserved, and must not leave detached threads running
/// (thread::scope joins all workers before `build_inner` returns).
#[test]
fn poisoned_worker_surfaces_as_build_error() {
    use pv_suite::core::index::BUILD_POISON_ID;
    use std::sync::atomic::Ordering;

    // The poison id exists only in this test's database, so the global
    // fail-point cannot trip concurrently running builds (their ids are
    // disjoint small integers or 10_000+/20_000+ ranges).
    let mut db = seed_db(60, 2, 99);
    let victim = 777_000_777u64;
    db.objects[30].id = victim;

    BUILD_POISON_ID.store(victim, Ordering::SeqCst);
    for threads in [1usize, 2, 4] {
        let params = PvParams {
            build_threads: threads,
            ..Default::default()
        };
        match PvIndex::try_build(&db, params) {
            Err(BuildError::WorkerPanicked { message }) => assert!(
                message.contains("poisoned object 777000777"),
                "{threads}-thread build lost the panic message: {message:?}"
            ),
            Err(e) => panic!("unexpected build error variant: {e}"),
            Ok(_) => panic!("{threads}-thread build swallowed the worker panic"),
        }
    }
    BUILD_POISON_ID.store(u64::MAX, Ordering::SeqCst);

    // With the fail-point disarmed the same database builds fine.
    assert_eq!(
        PvIndex::try_build(&db, PvParams::default()).unwrap().len(),
        60
    );
}
