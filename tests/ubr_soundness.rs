//! UBR conservativeness across the whole pipeline: for every object `o` and
//! every point `p` where `o` can possibly be the nearest neighbor (region
//! semantics), `p` must lie inside the stored `B(o)` — the invariant that
//! makes PV-index Step 1 lossless. Also checks tightness trends (Δ, mmax)
//! and the Δ vs UBR-volume trade-off the paper discusses in §V.

use proptest::prelude::*;
use pv_suite::core::{PvIndex, PvParams};
use pv_suite::geom::{max_dist, min_dist, HyperRect, Point};
use pv_suite::uncertain::{UncertainDb, UncertainObject};
use pv_suite::workload::{synthetic, SyntheticConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn can_be_nn(o: &UncertainObject, objects: &[UncertainObject], p: &Point) -> bool {
    let tau = objects
        .iter()
        .map(|x| max_dist(&x.region, p))
        .fold(f64::INFINITY, f64::min);
    min_dist(&o.region, p) <= tau
}

#[test]
fn stored_ubrs_cover_all_possible_nn_points() {
    let db = synthetic(&SyntheticConfig {
        n: 200,
        dim: 2,
        max_side: 200.0,
        samples: 8,
        seed: 31,
    });
    let index = PvIndex::build(&db, PvParams::default());
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..3_000 {
        let p = Point::new(vec![
            rng.gen_range(0.0..10_000.0),
            rng.gen_range(0.0..10_000.0),
        ]);
        for o in &db.objects {
            if can_be_nn(o, &db.objects, &p) {
                assert!(
                    index.ubr(o.id).unwrap().contains_point(&p),
                    "possible-NN point {p:?} escaped B({})",
                    o.id
                );
            }
        }
    }
}

#[test]
fn ubr_volume_shrinks_with_delta() {
    let db = synthetic(&SyntheticConfig {
        n: 150,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 32,
    });
    let volumes: Vec<f64> = [1000.0, 100.0, 10.0, 1.0]
        .iter()
        .map(|&delta| {
            let index = PvIndex::build(
                &db,
                PvParams {
                    delta,
                    ..Default::default()
                },
            );
            db.objects
                .iter()
                .map(|o| index.ubr(o.id).unwrap().volume())
                .sum::<f64>()
        })
        .collect();
    for w in volumes.windows(2) {
        assert!(
            w[1] <= w[0] * 1.001,
            "smaller Δ must not loosen UBRs: {volumes:?}"
        );
    }
    // and the trend must be strict overall
    assert!(volumes.last().unwrap() < &(volumes[0] * 0.9), "{volumes:?}");
}

#[test]
fn ubrs_tighter_than_trivial_domain_bound() {
    let db = synthetic(&SyntheticConfig {
        n: 300,
        dim: 3,
        max_side: 100.0,
        samples: 8,
        seed: 33,
    });
    let index = PvIndex::build(&db, PvParams::default());
    let dom_vol = db.domain.volume();
    let avg_ratio: f64 = db
        .objects
        .iter()
        .map(|o| index.ubr(o.id).unwrap().volume() / dom_vol)
        .sum::<f64>()
        / db.len() as f64;
    // with 300 objects the average PV-cell occupies a small domain fraction
    assert!(avg_ratio < 0.05, "avg UBR/domain ratio {avg_ratio}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomised clustered layouts: soundness must hold regardless of the
    /// spatial distribution.
    #[test]
    fn ubr_soundness_on_random_clusters(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_clusters = rng.gen_range(1..4);
        let centers: Vec<(f64, f64)> = (0..n_clusters)
            .map(|_| (rng.gen_range(1000.0..9000.0), rng.gen_range(1000.0..9000.0)))
            .collect();
        let objects: Vec<UncertainObject> = (0..60u64)
            .map(|id| {
                let (cx, cy) = centers[rng.gen_range(0..centers.len())];
                let lo = vec![
                    (cx + rng.gen_range(-800.0..800.0)).clamp(0.0, 9_900.0),
                    (cy + rng.gen_range(-800.0..800.0)).clamp(0.0, 9_900.0),
                ];
                let hi = vec![
                    (lo[0] + rng.gen_range(1.0..80.0)).min(10_000.0),
                    (lo[1] + rng.gen_range(1.0..80.0)).min(10_000.0),
                ];
                UncertainObject::uniform(id, HyperRect::new(lo, hi), 4)
            })
            .collect();
        let db = UncertainDb::new(HyperRect::cube(2, 0.0, 10_000.0), objects);
        let index = PvIndex::build(&db, PvParams::default());
        for _ in 0..150 {
            let p = Point::new(vec![
                rng.gen_range(0.0..10_000.0),
                rng.gen_range(0.0..10_000.0),
            ]);
            for o in &db.objects {
                if can_be_nn(o, &db.objects, &p) {
                    prop_assert!(index.ubr(o.id).unwrap().contains_point(&p));
                }
            }
        }
    }
}
