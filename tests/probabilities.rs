//! Full-PNNQ semantics across crates: Step-1 answer sets carry all of the
//! probability mass, PV-index and R-tree baseline produce identical
//! probabilities, and the pipeline's I/O accounting is consistent.

use pv_suite::core::baseline::RTreeBaseline;
use pv_suite::core::{prob, ProbNnEngine, PvIndex, PvParams, QuerySpec, Step1Engine};
use pv_suite::uncertain::UncertainObject;
use pv_suite::workload::{queries, synthetic, SyntheticConfig};

fn db(n: usize, dim: usize, seed: u64) -> pv_suite::uncertain::UncertainDb {
    synthetic(&SyntheticConfig {
        n,
        dim,
        max_side: 250.0,
        samples: 32,
        seed,
    })
}

#[test]
fn probabilities_sum_to_one_across_queries() {
    let db = db(250, 2, 41);
    let index = PvIndex::build(&db, PvParams::default());
    for q in queries::uniform(&db.domain, 15, 1) {
        let out = index.execute(&q, &QuerySpec::new()).expect("query");
        let total: f64 = out.answers.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total} at {q:?}");
    }
}

#[test]
fn pv_and_rtree_probabilities_agree() {
    let db = db(200, 3, 42);
    let index = PvIndex::build(&db, PvParams::default());
    let baseline = RTreeBaseline::build(&db, 100, 4096);
    for q in queries::uniform(&db.domain, 10, 2) {
        let mut a = index.execute(&q, &QuerySpec::new()).expect("query").answers;
        let mut b = baseline
            .execute(&q, &QuerySpec::new())
            .expect("query")
            .answers;
        a.sort_by_key(|&(id, _)| id);
        b.sort_by_key(|&(id, _)| id);
        assert_eq!(a.len(), b.len());
        for ((ia, pa), (ib, pb)) in a.iter().zip(b.iter()) {
            assert_eq!(ia, ib);
            assert!((pa - pb).abs() < 1e-12, "{ia}: {pa} vs {pb}");
        }
    }
}

#[test]
fn excluded_objects_have_zero_probability() {
    // Computing probabilities over ALL objects must put zero mass outside
    // the Step-1 answer set — Step 1 is lossless.
    let db = db(120, 2, 43);
    let index = PvIndex::build(&db, PvParams::default());
    for q in queries::uniform(&db.domain, 8, 3) {
        let (answer_ids, _) = index.step1(&q);
        let all: Vec<&UncertainObject> = db.objects.iter().collect();
        let probs = prob::qualification_probabilities(&q, &all);
        for (id, p) in probs {
            if !answer_ids.contains(&id) {
                assert_eq!(p, 0.0, "object {id} outside Step 1 has mass {p}");
            }
        }
    }
}

#[test]
fn step2_io_scales_with_answer_count() {
    let db = db(300, 2, 44);
    let index = PvIndex::build(&db, PvParams::default());
    for q in queries::uniform(&db.domain, 10, 4) {
        let out = index.execute(&q, &QuerySpec::new()).expect("query");
        // every answer costs at least one secondary read + payload pages
        assert!(out.stats.pc_io_reads >= out.answers.len() as u64);
    }
}

#[test]
fn query_stats_accumulate_sanely() {
    let db = db(300, 2, 45);
    let index = PvIndex::build(&db, PvParams::default());
    let q = &queries::uniform(&db.domain, 1, 5)[0];
    let out = index.execute(q, &QuerySpec::new()).expect("query");
    let stats = &out.stats;
    assert!(stats.total_time() >= stats.step1.time);
    assert!(stats.total_io() >= stats.step1.io_reads);
    assert!(stats.step1.candidates >= stats.step1.answers);
    assert_eq!(out.answers.len(), out.candidates.len());
}
