//! UV-index baseline validation: the ray-marched UV-cell stand-in must keep
//! near-perfect Step-1 recall against the naive ground truth (see DESIGN.md
//! §3 — this test quantifies the residual approximation risk of the
//! substitution), while the PV-index stays exact on the same data.

use pv_suite::core::{verify, PvIndex, PvParams, Step1Engine};
use pv_suite::uvindex::{UvIndex, UvParams};
use pv_suite::workload::{queries, realistic, synthetic, SyntheticConfig};

fn recall_on(db: &pv_suite::uncertain::UncertainDb, n_queries: usize, seed: u64) -> f64 {
    let uv = UvIndex::build(db, UvParams::default());
    let mut found = 0usize;
    let mut expected = 0usize;
    for q in queries::uniform(&db.domain, n_queries, seed) {
        let want = verify::possible_nn(db.objects.iter(), &q);
        let (got, _) = uv.step1(&q);
        expected += want.len();
        found += want.iter().filter(|id| got.contains(id)).count();
    }
    found as f64 / expected.max(1) as f64
}

#[test]
fn uniform_2d_recall() {
    let db = synthetic(&SyntheticConfig {
        n: 250,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 51,
    });
    let r = recall_on(&db, 40, 1);
    assert!(r > 0.98, "recall {r}");
}

#[test]
fn roads_recall() {
    let db = realistic::roads(300, 52);
    let r = recall_on(&db, 30, 2);
    assert!(r > 0.95, "recall {r}");
}

#[test]
fn rrlines_recall() {
    let db = realistic::rrlines(300, 53);
    let r = recall_on(&db, 30, 3);
    assert!(r > 0.95, "recall {r}");
}

#[test]
fn pv_remains_exact_where_uv_approximates() {
    let db = synthetic(&SyntheticConfig {
        n: 200,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 54,
    });
    let pv = PvIndex::build(&db, PvParams::default());
    for q in queries::uniform(&db.domain, 30, 4) {
        let want = verify::possible_nn(db.objects.iter(), &q);
        let (got, _) = pv.step1(&q);
        assert_eq!(got, want);
    }
}

#[test]
fn uv_cells_wider_than_pv_ubrs_on_average() {
    // Circles circumscribe rectangles, so UV cells are systematically
    // looser — one reason the PV-index also wins on space (§II).
    let db = synthetic(&SyntheticConfig {
        n: 150,
        dim: 2,
        max_side: 150.0,
        samples: 8,
        seed: 55,
    });
    let pv = PvIndex::build(&db, PvParams::default());
    let uv = UvIndex::build(&db, UvParams::default());
    let mut pv_vol = 0.0;
    let mut uv_vol = 0.0;
    for o in &db.objects {
        pv_vol += pv.ubr(o.id).unwrap().volume();
        uv_vol += uv.cell_mbr(o.id).unwrap().volume();
    }
    assert!(
        uv_vol > pv_vol,
        "UV total cell volume {uv_vol} should exceed PV {pv_vol}"
    );
}
