//! The steady-state allocation contract of the batch query path.
//!
//! After warm-up (two batches that grow every scratch/outcome buffer to its
//! working size), a sequential `query_batch_into` over the same workload
//! must perform **zero** heap allocations — the whole Step-1 descent,
//! secondary-record fetch, instance sampling and merged-CDF sweep run out
//! of reused buffers. This is asserted with a counting global allocator
//! around real PV-index and linear-scan batches, and — since PR 5 — around
//! the concurrent `Db` facade's `Session` path: pinning a published
//! snapshot is an `Arc` clone and the session pools its scratch, so the
//! contract survives the API redesign.
//!
//! Everything lives in one `#[test]` because the counter is process-global:
//! a sibling test allocating concurrently would poison the delta.

use pv_bench::alloc_counter::{allocations, CountingAllocator};
use pv_suite::core::db::Db;
use pv_suite::core::{BatchSlots, LinearScan, ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn measure_steady_state<E: ProbNnEngine + Sync>(
    engine: &E,
    points: &[pv_suite::geom::Point],
    spec: &QuerySpec,
) -> u64 {
    let mut slots = BatchSlots::new();
    // Warm-up: grow outcome vectors and per-worker scratches.
    engine.query_batch_into(points, spec, &mut slots).unwrap();
    engine.query_batch_into(points, spec, &mut slots).unwrap();
    let before = allocations();
    let stats = engine.query_batch_into(points, spec, &mut slots).unwrap();
    let delta = allocations() - before;
    assert_eq!(stats.queries, points.len());
    assert!(stats.answers > 0, "workload produced no answers");
    delta
}

/// Same contract through the `Db` facade: a warmed `Session` batch, and a
/// warmed single-query loop, both at zero allocations per query.
fn measure_db_steady_state(
    db: &Db<PvIndex>,
    points: &[pv_suite::geom::Point],
    spec: &QuerySpec,
) -> (u64, u64) {
    let mut session = db.session();
    session.query_batch(points, spec).unwrap();
    session.query_batch(points, spec).unwrap();
    let before = allocations();
    let stats = session.query_batch(points, spec).unwrap();
    let batch_delta = allocations() - before;
    assert_eq!(stats.queries, points.len());

    for q in points {
        session.query(q, spec).unwrap();
    }
    let before = allocations();
    let mut answers = 0usize;
    for q in points {
        answers += session.query(q, spec).unwrap().answers.len();
    }
    let single_delta = allocations() - before;
    assert!(answers > 0);
    (batch_delta, single_delta)
}

#[test]
fn steady_state_query_batch_allocates_nothing() {
    let db = synthetic(&SyntheticConfig {
        n: 400,
        dim: 2,
        max_side: 150.0,
        samples: 24,
        seed: 7,
    });
    let points = queries::uniform(&db.domain, 48, 3);
    // Sequential: parallel batches still allocate per worker spawn; the
    // per-query hot path itself is what must stay allocation-free.
    let spec = QuerySpec::new().with_batch_threads(1);

    let index = PvIndex::build(&db, PvParams::default());
    let pv_allocs = measure_steady_state(&index, &points, &spec);
    assert_eq!(
        pv_allocs, 0,
        "pv-index steady-state batch performed {pv_allocs} heap allocations"
    );

    let scan = LinearScan::new(&db);
    let scan_allocs = measure_steady_state(&scan, &points, &spec);
    assert_eq!(
        scan_allocs, 0,
        "linear-scan steady-state batch performed {scan_allocs} heap allocations"
    );

    // Pruning specs share the same buffers: still allocation-free.
    let pruned_spec = QuerySpec::new().with_top_k(3).with_batch_threads(1);
    let pruned = measure_steady_state(&index, &points, &pruned_spec);
    assert_eq!(
        pruned, 0,
        "pv-index steady-state top-k batch performed {pruned} heap allocations"
    );

    // The Db facade: snapshot pinning (Arc clone) plus the pooled Session
    // scratch keep the hot path allocation-free through the redesigned API.
    let facade = Db::new(index);
    let (batch_allocs, single_allocs) = measure_db_steady_state(&facade, &points, &pruned_spec);
    assert_eq!(
        batch_allocs, 0,
        "Db session steady-state batch performed {batch_allocs} heap allocations"
    );
    assert_eq!(
        single_allocs, 0,
        "Db session steady-state queries performed {single_allocs} heap allocations"
    );

    // Since PR 6 the published engine after a commit is a page-level COW
    // fork, not a rebuilt index: its pages are Arc-shared with the previous
    // version. Reads on a forked engine must stay allocation-free too —
    // sharing may never force a copy or a fresh buffer on the read path.
    let extra = pv_suite::uncertain::UncertainObject::uniform(
        90_000,
        pv_suite::geom::HyperRect::new(vec![40.0, 40.0], vec![44.0, 44.0]),
        8,
    );
    facade.insert(extra).expect("fresh id");
    let (cow_batch, cow_single) = measure_db_steady_state(&facade, &points, &pruned_spec);
    assert_eq!(
        cow_batch, 0,
        "COW-forked engine steady-state batch performed {cow_batch} heap allocations"
    );
    assert_eq!(
        cow_single, 0,
        "COW-forked engine steady-state queries performed {cow_single} heap allocations"
    );
}
