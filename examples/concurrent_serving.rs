//! Concurrent serving through the `Db` facade: snapshot-isolated readers
//! keep answering dispatch queries while a writer streams fleet churn, and
//! nobody ever waits on anybody's index work.
//!
//! Before PR 5 the only mutation path was `PvIndex::insert/remove(&mut
//! self)` — a writer stopped the world. `Db` publishes immutable snapshots
//! instead: readers pin the current one (an `Arc` clone), the writer forks
//! a copy-on-write successor and swaps it in atomically.
//!
//! Run with:
//! ```text
//! cargo run --release --example concurrent_serving
//! ```

use pv_suite::core::db::Db;
use pv_suite::core::{PvIndex, PvParams, QuerySpec};
use pv_suite::geom::HyperRect;
use pv_suite::uncertain::{UncertainDb, UncertainObject};
use pv_suite::workload::queries;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn gps_box(rng: &mut StdRng, err: f64) -> HyperRect {
    let cx = rng.gen_range(err..10_000.0 - err);
    let cy = rng.gen_range(err..10_000.0 - err);
    HyperRect::new(vec![cx - err, cy - err], vec![cx + err, cy + err])
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5005);
    let err = 35.0;
    let fleet: Vec<UncertainObject> = (0..800u64)
        .map(|id| UncertainObject::uniform(id, gps_box(&mut rng, err), 100))
        .collect();
    let data = UncertainDb::new(HyperRect::cube(2, 0.0, 10_000.0), fleet);

    println!("building PV-index over {} vehicles...", data.len());
    let t = Instant::now();
    let db = Db::new(PvIndex::build(&data, PvParams::default()));
    println!("  built in {:?} (published as version 0)", t.elapsed());

    // A malformed request is a typed error, not a crash.
    let bad = queries::uniform(&HyperRect::cube(3, 0.0, 1.0), 1, 1)[0].clone();
    println!(
        "  3-D query against 2-D data: {}",
        db.query(&bad, &QuerySpec::new()).unwrap_err()
    );

    let qs = queries::uniform(&HyperRect::cube(2, 0.0, 10_000.0), 64, 7);
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let max_read_stall = AtomicU64::new(0); // slowest single read, ns
    let spec = QuerySpec::new().with_top_k(3);

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        // Three dispatch readers, each with a pooled session (the
        // allocation-free hot path).
        for _ in 0..3 {
            scope.spawn(|| {
                let mut session = db.session();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let t_read = Instant::now();
                    session
                        .query(&qs[i % qs.len()], &spec)
                        .expect("dispatch query");
                    let ns = t_read.elapsed().as_nanos() as u64;
                    max_read_stall.fetch_max(ns, Ordering::Relaxed);
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // One writer streaming churn: each commit forks a successor off to
        // the side and publishes it atomically.
        scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(7007);
            let mut next_id = 100_000u64;
            let mut published = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let o = UncertainObject::uniform(next_id, gps_box(&mut rng, err), 100);
                db.insert(o).expect("fresh id");
                db.remove(next_id).expect("just inserted");
                next_id += 1;
                published += 2;
                std::thread::sleep(Duration::from_millis(20));
            }
            println!("  writer published {published} snapshot versions");
        });
        std::thread::sleep(Duration::from_millis(1500));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = t0.elapsed();

    let total_reads = reads.load(Ordering::Relaxed);
    println!(
        "\nserved {} reads in {:?} ({:.0} queries/s) while writing concurrently",
        total_reads,
        elapsed,
        total_reads as f64 / elapsed.as_secs_f64()
    );
    println!(
        "  slowest single read: {:.2} ms (readers never wait on the writer's index work)",
        max_read_stall.load(Ordering::Relaxed) as f64 / 1e6
    );
    println!(
        "  final state: version {}, {} vehicles",
        db.version(),
        db.len()
    );

    // A reader pinned before a write keeps its snapshot alive and
    // consistent for as long as it wants.
    let pinned = db.reader();
    db.insert(UncertainObject::uniform(
        999_999,
        gps_box(&mut rng, err),
        100,
    ))
    .expect("fresh id");
    assert_eq!(pinned.len() + 1, db.len());
    println!(
        "  pinned reader still serves version {} while the db is at {}",
        pinned.version(),
        db.version()
    );
}
