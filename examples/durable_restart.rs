//! Crash-safe durability: build a PV-index, wrap it in a [`DurableDb`],
//! commit a stream of writes through the write-ahead log, "crash" the
//! process mid-stream (drop without any shutdown ceremony, then tear the
//! last WAL record in half), and recover — every acknowledged commit
//! survives, the torn tail is truncated away, and the recovered index
//! answers exactly like the one that crashed.
//!
//! Run with:
//! ```text
//! cargo run --release --example durable_restart
//! ```

use pv_suite::core::durable::{DurableDb, DurableOptions, SyncPolicy};
use pv_suite::core::{PvIndex, PvParams, QuerySpec};
use pv_suite::geom::HyperRect;
use pv_suite::uncertain::UncertainObject;
use pv_suite::workload::{queries, synthetic, SyntheticConfig};
use std::time::Instant;

fn main() {
    let cfg = SyntheticConfig {
        n: 1_000,
        dim: 3,
        max_side: 60.0,
        samples: 100,
        seed: 99,
    };
    println!(
        "building a PV-index over {} objects (d = {})...",
        cfg.n, cfg.dim
    );
    let db = synthetic(&cfg);
    let qs = queries::uniform(&db.domain, 25, 11);
    let spec = QuerySpec::new().with_top_k(5);
    let index = PvIndex::build(&db, PvParams::default());

    let dir = std::env::temp_dir().join("pv_durable_restart");
    let _ = std::fs::remove_dir_all(&dir);

    // EveryCommit: an acknowledged commit is fsynced before `insert`
    // returns, so a crash can never lose it.
    let opts = DurableOptions {
        sync: SyncPolicy::EveryCommit,
        ..Default::default()
    };
    let durable = DurableDb::create(&dir, index, opts).expect("create durable directory");
    println!(
        "durable directory at {} (snapshot generation 0 + empty WAL on disk)",
        dir.display()
    );

    // --- Commit a write stream through the WAL. ---
    let rounds = 25u64;
    let t0 = Instant::now();
    for i in 0..rounds {
        let lo: Vec<f64> = (0..3).map(|a| (7.0 * i as f64 + a as f64) % 50.0).collect();
        let hi: Vec<f64> = lo.iter().map(|v| v + 2.0).collect();
        let commit = durable
            .insert(UncertainObject::uniform(
                10_000 + i,
                HyperRect::new(lo, hi),
                32,
            ))
            .expect("durable insert");
        assert!(commit.synced, "EveryCommit acknowledges only after fsync");
    }
    let commit_time = t0.elapsed();
    println!(
        "committed {rounds} inserts through the WAL in {commit_time:?} \
         ({:?}/commit, every one fsynced), log at {} bytes",
        commit_time / rounds as u32,
        durable.wal_bytes()
    );

    let live_version = durable.db().version();
    let live_answers: Vec<_> = qs
        .iter()
        .map(|q| durable.db().query(q, &spec).expect("query").answers)
        .collect();

    // --- Crash. No shutdown, no final save; then make it ugly: tear the
    // --- last WAL record in half, as if power failed mid-append.
    drop(durable);
    let wal_path = dir.join("wal");
    let wal = std::fs::read(&wal_path).expect("read wal");
    let torn_len = wal.len() - 11;
    std::fs::write(&wal_path, &wal[..torn_len]).expect("tear wal tail");
    println!(
        "\n-- crash -- (WAL torn from {} to {torn_len} bytes)\n",
        wal.len()
    );

    // --- Recover: snapshot generation + WAL replay. ---
    let t0 = Instant::now();
    let (recovered, report) = DurableDb::<PvIndex>::open(&dir, opts).expect("recovery");
    let recovery_time = t0.elapsed();
    println!(
        "recovered in {recovery_time:?}: snapshot generation {} + {} replayed commits \
         -> version {}",
        report.snapshot_version, report.replayed_commits, report.recovered_version
    );
    let tail = report.torn_tail.expect("the torn append is detected");
    println!(
        "  torn tail at offset {} ({} partial bytes truncated away)",
        tail.offset, tail.dropped
    );

    // The torn record was never acknowledged; everything acknowledged is back.
    assert_eq!(recovered.db().version(), live_version);
    let mut identical = 0usize;
    for (q, want) in qs.iter().zip(&live_answers) {
        let got = recovered.db().query(q, &spec).expect("query").answers;
        assert_eq!(&got, want, "recovered index diverged at {q:?}");
        identical += 1;
    }
    println!(
        "  {identical}/{} queries answered identically to the pre-crash index",
        qs.len()
    );

    // --- And the recovered handle just keeps serving writes. ---
    let commit = recovered
        .insert(UncertainObject::uniform(
            20_000,
            HyperRect::new(vec![5.0; 3], vec![6.0; 3]),
            32,
        ))
        .expect("post-recovery insert");
    assert!(commit.synced);
    println!(
        "post-recovery insert acknowledged at version {} — durability restored",
        commit.version
    );
    let _ = std::fs::remove_dir_all(&dir);
}
