//! Airports scenario: the paper's 3-D real-dataset experiment (Fig. 9(h)),
//! run on the simulated `airports` dataset — hub-clustered 3-D coordinates
//! with 10 m-radius GPS error spheres bounded by their MBRs.
//!
//! Compares PNNQ evaluation through the PV-index against the R-tree
//! branch-and-prune baseline, the comparison the paper reports a ~45%
//! speedup for.
//!
//! Run with:
//! ```text
//! cargo run --release --example airports
//! ```

use pv_suite::core::baseline::RTreeBaseline;
use pv_suite::core::{verify, PvIndex, PvParams, Step1Engine};
use pv_suite::workload::{queries, realistic};
use std::time::Duration;

fn main() {
    let n = 3_000;
    println!("simulating {n} airports (3-D, clustered, 10 m GPS error boxes)...");
    let db = realistic::airports(n, 4);

    let params = PvParams::default();
    println!("building indexes...");
    let index = PvIndex::build(&db, params);
    println!("  PV-index: {:?}", index.build_stats().total_time);
    let baseline = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);

    let m = 50;
    let qs = queries::data_skewed(&db, m, 500.0, 11);
    let mut pv_or = Duration::ZERO;
    let mut rt_or = Duration::ZERO;
    let mut pv_io = 0u64;
    let mut rt_io = 0u64;
    let mut answers = 0usize;
    for q in &qs {
        let (pv_ids, pv_st) = index.step1(q);
        let (rt_ids, rt_st) = baseline.step1(q);
        let want = verify::possible_nn(db.objects.iter(), q);
        assert_eq!(pv_ids, want);
        assert_eq!(rt_ids, want);
        pv_or += pv_st.time;
        rt_or += rt_st.time;
        pv_io += pv_st.io_reads;
        rt_io += rt_st.io_reads;
        answers += want.len();
    }

    println!("\nStep-1 retrieval over {m} dispatch queries (both exact):");
    println!(
        "  PV-index : total {:?}  ({} leaf-page reads)",
        pv_or, pv_io
    );
    println!(
        "  R-tree   : total {:?}  ({} leaf-node reads)",
        rt_or, rt_io
    );
    println!(
        "  averages : {:.1} possible-NN airports per query; PV I/O is {:.0}% of R-tree's",
        answers as f64 / m as f64,
        100.0 * pv_io as f64 / rt_io.max(1) as f64
    );
    if pv_or < rt_or {
        println!(
            "  PV-index Step 1 is ×{:.2} faster (paper reports ~45% on its airports data)",
            rt_or.as_secs_f64() / pv_or.as_secs_f64().max(1e-12)
        );
    } else {
        println!("  note: at this reduced scale the R-tree kept up — rerun with a larger n");
    }
}
