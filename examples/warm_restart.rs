//! Warm restart: build a PV-index once, snapshot it to one file, "restart"
//! the process (drop everything), load the snapshot in O(file read) and
//! serve the exact same answers — the build-once / serve-many workflow the
//! persistence subsystem exists for.
//!
//! Run with:
//! ```text
//! cargo run --release --example warm_restart
//! ```

use pv_suite::core::{ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};
use std::time::Instant;

fn main() {
    let cfg = SyntheticConfig {
        n: 2_000,
        dim: 3,
        max_side: 60.0,
        samples: 200,
        seed: 4242,
    };
    println!(
        "generating {} uncertain objects (d = {})...",
        cfg.n, cfg.dim
    );
    let db = synthetic(&cfg);
    let qs = queries::uniform(&db.domain, 50, 7);
    let spec = QuerySpec::new().with_top_k(5);
    let path = std::env::temp_dir().join("pv_warm_restart.pvix");

    // --- Cold start: pay the full SE construction once. ---
    println!("cold start: building the PV-index (every object pays an SE run)...");
    let t0 = Instant::now();
    let index = PvIndex::build(&db, PvParams::default());
    let build_time = t0.elapsed();
    println!("  built in {build_time:?}");

    let t0 = Instant::now();
    index.save(&path).expect("save snapshot");
    let save_time = t0.elapsed();
    let file_kib = std::fs::metadata(&path).map_or(0, |m| m.len()) / 1024;
    println!(
        "  snapshot saved in {save_time:?}  ({file_kib} KiB at {})",
        path.display()
    );

    let cold_answers: Vec<_> = qs
        .iter()
        .map(|q| index.execute(q, &spec).expect("query").answers)
        .collect();
    drop(index); // "the process exits"

    // --- Warm restart: no SE, no octree construction — just a file read. ---
    println!("warm restart: loading the snapshot...");
    let t0 = Instant::now();
    let restored = PvIndex::load(&path).expect("load snapshot");
    let load_time = t0.elapsed();
    println!(
        "  loaded {} objects in {load_time:?}  ({:.0}x faster than the cold build)",
        restored.len(),
        build_time.as_secs_f64() / load_time.as_secs_f64().max(1e-9)
    );

    // --- The restored index serves byte-identical answers. ---
    let mut identical = 0usize;
    for (q, want) in qs.iter().zip(&cold_answers) {
        let got = restored.execute(q, &spec).expect("query").answers;
        assert_eq!(&got, want, "restored index diverged at {q:?}");
        identical += 1;
    }
    println!(
        "  {identical}/{} queries answered identically to the cold index",
        qs.len()
    );

    assert!(
        load_time.as_secs_f64() * 5.0 < build_time.as_secs_f64(),
        "load ({load_time:?}) should be at least 5x faster than build ({build_time:?})"
    );
    println!("warm restart OK: load was >5x cheaper than rebuild");
    let _ = std::fs::remove_file(&path);
}
