//! Quickstart: build a PV-index over a synthetic uncertain database, run
//! probabilistic nearest-neighbor queries through the unified engine API
//! (`QuerySpec` + `ProbNnEngine`), and compare against the R-tree baseline
//! and the linear-scan ground truth.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use pv_suite::core::baseline::RTreeBaseline;
use pv_suite::core::{LinearScan, ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};

fn main() {
    // A 3-D uncertain database, paper-style: means uniform in [0,10000]^3,
    // uncertainty-region sides uniform in [1,60], 500-instance pdfs.
    let cfg = SyntheticConfig {
        n: 2_000,
        dim: 3,
        max_side: 60.0,
        samples: 500,
        seed: 42,
    };
    println!(
        "generating {} uncertain objects (d = {})...",
        cfg.n, cfg.dim
    );
    let db = synthetic(&cfg);

    println!("building the PV-index (SE + octree + hash table)...");
    let params = PvParams::default();
    let index = PvIndex::build(&db, params);
    let bs = index.build_stats();
    println!(
        "  built in {:?}  (avg C-set size {:.1}, {} slab tests)",
        bs.total_time,
        bs.avg_cset_size(),
        bs.se.slab_tests
    );
    let ot = index.octree_stats();
    println!(
        "  primary index: {} internal / {} leaf nodes, depth {}, {} leaf records, {} KiB memory",
        ot.internal_nodes,
        ot.leaf_nodes,
        ot.depth,
        ot.leaf_records,
        ot.mem_used / 1024
    );

    println!("building the R-tree baseline and the linear-scan ground truth...");
    let baseline = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);
    let scan = LinearScan::with_page_size(&db, params.page_size);

    // One PNNQ through the engine-agnostic API: every engine answers the
    // same QuerySpec.
    let q = queries::uniform(&db.domain, 1, 7)[0].clone();
    println!("\nPNNQ at q = {:?}", q.coords());
    let spec = QuerySpec::point(q);
    let pv_out = index.run(&spec).expect("query");
    println!(
        "  PV-index : {} answers, OR {:?} ({} I/O), PC {:?} ({} I/O)",
        pv_out.answers.len(),
        pv_out.stats.step1.time,
        pv_out.stats.step1.io_reads,
        pv_out.stats.pc_time,
        pv_out.stats.pc_io_reads
    );
    let rt_out = baseline.run(&spec).expect("query");
    println!(
        "  R-tree   : {} answers, OR {:?} ({} I/O), PC {:?} ({} I/O)",
        rt_out.answers.len(),
        rt_out.stats.step1.time,
        rt_out.stats.step1.io_reads,
        rt_out.stats.pc_time,
        rt_out.stats.pc_io_reads
    );
    let truth = scan.run(&spec).expect("query");
    println!(
        "  naive    : {} answers (ground truth)",
        truth.answers.len()
    );

    // All engines see the same candidate set and the same probabilities.
    assert_eq!(pv_out.candidates, truth.candidates);
    assert_eq!(rt_out.candidates, truth.candidates);
    assert_eq!(pv_out.answers, truth.answers);

    // Answer semantics beyond the paper: top-k and probability thresholds,
    // with Step-2 early termination skipping unfetchable candidates.
    let top3 = index.run(&spec.clone().with_top_k(3)).expect("query");
    println!("\ntop-3 most likely nearest neighbors (PV-index):");
    for (id, p) in &top3.answers {
        println!("  object {:>6}  P(nearest) = {:.4}", id, p);
    }
    if top3.skipped_payloads > 0 {
        println!(
            "  (early termination skipped {} pdf payloads)",
            top3.skipped_payloads
        );
    }
    let confident = index.run(&spec.clone().with_threshold(0.2)).expect("query");
    println!("answers with P >= 0.2: {:?}", confident.answer_ids());
    let total: f64 = pv_out.answers.iter().map(|(_, p)| p).sum();
    println!("Σ over all answers = {total:.6} (≈ 1)");

    // Batched execution: the whole workload in one call, in parallel.
    let batch_qs = queries::uniform(&db.domain, 64, 11);
    let batch = index
        .query_batch(&batch_qs, &QuerySpec::new().with_top_k(3))
        .expect("batch");
    println!(
        "\nbatch: {} queries on {} threads in {:?} ({:.0} queries/s, {} answers)",
        batch.stats.queries,
        batch.stats.threads,
        batch.stats.wall_time,
        batch.stats.queries_per_sec(),
        batch.stats.answers
    );
}
