//! Quickstart: build a PV-index over a synthetic uncertain database, run a
//! probabilistic nearest-neighbor query, and compare against the R-tree
//! baseline and the naive scan.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use pv_suite::core::baseline::RTreeBaseline;
use pv_suite::core::{verify, PvIndex, PvParams};
use pv_suite::workload::{queries, synthetic, SyntheticConfig};

fn main() {
    // A 3-D uncertain database, paper-style: means uniform in [0,10000]^3,
    // uncertainty-region sides uniform in [1,60], 500-instance pdfs.
    let cfg = SyntheticConfig {
        n: 2_000,
        dim: 3,
        max_side: 60.0,
        samples: 500,
        seed: 42,
    };
    println!("generating {} uncertain objects (d = {})...", cfg.n, cfg.dim);
    let db = synthetic(&cfg);

    println!("building the PV-index (SE + octree + hash table)...");
    let params = PvParams::default();
    let index = PvIndex::build(&db, params);
    let bs = index.build_stats();
    println!(
        "  built in {:?}  (avg C-set size {:.1}, {} slab tests)",
        bs.total_time,
        bs.avg_cset_size(),
        bs.se.slab_tests
    );
    let ot = index.octree_stats();
    println!(
        "  primary index: {} internal / {} leaf nodes, depth {}, {} leaf records, {} KiB memory",
        ot.internal_nodes,
        ot.leaf_nodes,
        ot.depth,
        ot.leaf_records,
        ot.mem_used / 1024
    );

    println!("building the R-tree baseline...");
    let baseline = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);

    // One PNNQ.
    let q = &queries::uniform(&db.domain, 1, 7)[0];
    println!("\nPNNQ at q = {:?}", q.coords());

    let (pv_probs, pv_stats) = index.query(q);
    println!(
        "  PV-index : {} answers, OR {:?} ({} I/O), PC {:?} ({} I/O)",
        pv_probs.len(),
        pv_stats.step1.time,
        pv_stats.step1.io_reads,
        pv_stats.pc_time,
        pv_stats.pc_io_reads
    );

    let (rt_probs, rt_stats) = baseline.query(q);
    println!(
        "  R-tree   : {} answers, OR {:?} ({} I/O), PC {:?} ({} I/O)",
        rt_probs.len(),
        rt_stats.step1.time,
        rt_stats.step1.io_reads,
        rt_stats.pc_time,
        rt_stats.pc_io_reads
    );

    let naive = verify::possible_nn(db.objects.iter(), q);
    println!("  naive    : {} answers (ground truth)", naive.len());

    // The three Step-1 answer sets must agree.
    let pv_ids: Vec<u64> = pv_probs.iter().map(|&(id, _)| id).collect();
    let rt_ids: Vec<u64> = rt_probs.iter().map(|&(id, _)| id).collect();
    assert_eq!(sorted(pv_ids), naive);
    assert_eq!(sorted(rt_ids), naive);

    println!("\nqualification probabilities (PV-index):");
    let mut ranked = pv_probs;
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (id, p) in ranked.iter().take(5) {
        println!("  object {:>6}  P(nearest) = {:.4}", id, p);
    }
    let total: f64 = ranked.iter().map(|(_, p)| p).sum();
    println!("  Σ = {total:.6} (≈ 1)");
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}
