//! Sensor-field monitoring: the paper's motivating 3-D scenario.
//!
//! A habitat-monitoring network reports (temperature, humidity, wind speed)
//! triples contaminated with measurement error (§I of the paper, citing
//! model-based sensor querying). Each sensor's reading is an uncertain
//! object whose region bounds the calibration error. An analyst asks: given
//! a reference condition vector, which sensor's true reading is most likely
//! the closest match?
//!
//! Run with:
//! ```text
//! cargo run --release --example sensor_field
//! ```

use pv_suite::core::baseline::RTreeBaseline;
use pv_suite::core::{ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::geom::{HyperRect, Point};
use pv_suite::uncertain::{Pdf, UncertainDb, UncertainObject};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;

/// Domain mapping: temperature 0–50 °C, humidity 0–100 %, wind 0–30 m/s,
/// each scaled to [0, 10000] so the paper's parameters carry over.
const SCALE: [f64; 3] = [10_000.0 / 50.0, 10_000.0 / 100.0, 10_000.0 / 30.0];

fn reading_to_domain(temp: f64, hum: f64, wind: f64) -> Vec<f64> {
    vec![temp * SCALE[0], hum * SCALE[1], wind * SCALE[2]]
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2013);
    let n_sensors = 1_500;

    // Sensors cluster in micro-climates; each has a per-axis calibration
    // error that defines its rectangular uncertainty region.
    let climates = [
        (12.0, 80.0, 3.0),  // cool & wet
        (24.0, 55.0, 6.0),  // temperate
        (35.0, 20.0, 10.0), // hot & dry
    ];
    let mut objects = Vec::with_capacity(n_sensors);
    for id in 0..n_sensors as u64 {
        let (t0, h0, w0) = climates[rng.gen_range(0..climates.len())];
        let temp = (t0 + rng.gen_range(-6.0f64..6.0)).clamp(0.5, 49.5);
        let hum = (h0 + rng.gen_range(-15.0f64..15.0)).clamp(1.0, 99.0);
        let wind = (w0 + rng.gen_range(-2.5f64..2.5)).clamp(0.1, 29.5);
        // calibration error: ±0.5 °C, ±3 % RH, ±0.8 m/s
        let err = [0.5, 3.0, 0.8];
        let center = reading_to_domain(temp, hum, wind);
        let lo: Vec<f64> = center
            .iter()
            .zip(err.iter().zip(SCALE.iter()))
            .map(|(c, (e, s))| (c - e * s).max(0.0))
            .collect();
        let hi: Vec<f64> = center
            .iter()
            .zip(err.iter().zip(SCALE.iter()))
            .map(|(c, (e, s))| (c + e * s).min(10_000.0))
            .collect();
        objects.push(UncertainObject {
            id,
            region: HyperRect::new(lo, hi),
            pdf: Pdf::Gaussian {
                sigma: 40.0, // tight Gaussian inside the error box
                n: 500,
                seed: id * 31 + 7,
            },
        });
    }
    let db = UncertainDb::new(HyperRect::cube(3, 0.0, 10_000.0), objects);

    println!("indexing {n_sensors} uncertain sensor readings...");
    let params = PvParams::default();
    let t = Instant::now();
    let index = PvIndex::build(&db, params);
    println!("  PV-index built in {:?}", t.elapsed());
    let baseline = RTreeBaseline::build(&db, params.rtree_fanout, params.page_size);

    // Reference conditions an analyst may probe for.
    let probes = [
        ("frost risk", 2.0, 90.0, 1.0),
        ("comfort zone", 22.0, 50.0, 2.0),
        ("fire weather", 38.0, 12.0, 14.0),
    ];
    for (label, t_c, h_pct, w_ms) in probes {
        let q = Point::new(reading_to_domain(t_c, h_pct, w_ms));
        // The engine-agnostic spec asks both engines the same question; the
        // outcome already arrives ranked by qualification probability.
        let spec = QuerySpec::point(q);
        let out = index.run(&spec).expect("query");
        let rt_out = baseline.run(&spec).expect("query");
        println!(
            "\nprobe '{label}' ({t_c} °C, {h_pct} %RH, {w_ms} m/s): {} possible nearest sensors",
            out.answers.len()
        );
        for (id, p) in index
            .run(&spec.clone().with_top_k(3))
            .expect("query")
            .answers
        {
            println!("  sensor {:>5}  P(closest reading) = {:.4}", id, p);
        }
        println!(
            "  PV Step-1: {:?} / {} I/O   vs  R-tree Step-1: {:?} / {} I/O",
            out.stats.step1.time,
            out.stats.step1.io_reads,
            rt_out.stats.step1.time,
            rt_out.stats.step1.io_reads
        );
    }
}
