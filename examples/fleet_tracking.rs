//! Fleet tracking with live updates: the paper's location-based-service
//! scenario plus §VI-B's incremental maintenance.
//!
//! Vehicle positions arrive from GPS with bounded error (uncertain 2-D
//! objects). Vehicles enter and leave the service area continuously, so the
//! index must absorb insertions and deletions without a rebuild. Dispatch
//! queries ask "which vehicles could be nearest to this incident?".
//!
//! Run with:
//! ```text
//! cargo run --release --example fleet_tracking
//! ```

use pv_suite::core::{verify, ProbNnEngine, PvIndex, PvParams, QuerySpec, Step1Engine};
use pv_suite::geom::HyperRect;
use pv_suite::uncertain::{UncertainDb, UncertainObject};
use pv_suite::workload::queries;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::{Duration, Instant};

fn gps_box(rng: &mut StdRng, err: f64) -> HyperRect {
    let cx = rng.gen_range(err..10_000.0 - err);
    let cy = rng.gen_range(err..10_000.0 - err);
    HyperRect::new(vec![cx - err, cy - err], vec![cx + err, cy + err])
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let err = 35.0; // GPS error half-side in domain units

    // Initial fleet.
    let fleet: Vec<UncertainObject> = (0..1_200u64)
        .map(|id| UncertainObject::uniform(id, gps_box(&mut rng, err), 500))
        .collect();
    let db = UncertainDb::new(HyperRect::cube(2, 0.0, 10_000.0), fleet);

    println!("building PV-index over {} vehicles...", db.len());
    let t = Instant::now();
    let mut index = PvIndex::build(&db, PvParams::default());
    println!("  built in {:?}", t.elapsed());

    // Mirror of the database for ground-truth checks.
    let mut shadow = db.objects.clone();
    let mut next_id = 10_000u64;

    // Simulate a stream of fleet churn interleaved with dispatch queries.
    let mut t_insert = Duration::ZERO;
    let mut t_delete = Duration::ZERO;
    let mut n_insert = 0u32;
    let mut n_delete = 0u32;
    let mut affected_total = 0usize;
    for tick in 0..60 {
        match tick % 3 {
            0 => {
                // vehicle enters the service area
                let o = UncertainObject::uniform(next_id, gps_box(&mut rng, err), 500);
                next_id += 1;
                shadow.push(o.clone());
                let t0 = Instant::now();
                let st = index.insert(o).expect("fresh vehicle id");
                t_insert += t0.elapsed();
                n_insert += 1;
                affected_total += st.affected;
            }
            1 => {
                // vehicle leaves
                let pos = rng.gen_range(0..shadow.len());
                let victim = shadow.swap_remove(pos).id;
                let t0 = Instant::now();
                index.remove(victim).expect("known vehicle");
                t_delete += t0.elapsed();
                n_delete += 1;
            }
            _ => {
                // dispatch query at a random incident location
                let q = &queries::uniform(index.domain(), 1, 1000 + tick)[0];
                let out = index
                    .execute(q, &QuerySpec::new().with_step1_only())
                    .expect("dispatch query");
                let (ids, stats) = (out.candidates, out.stats.step1);
                let want = verify::possible_nn(shadow.iter(), q);
                assert_eq!(ids, want, "index drifted from ground truth");
                if tick % 15 == 2 {
                    println!(
                        "  tick {tick:>2}: incident at ({:.0}, {:.0}) → {} candidate vehicles ({:?}, {} I/O)",
                        q[0],
                        q[1],
                        ids.len(),
                        stats.time,
                        stats.io_reads
                    );
                }
            }
        }
    }

    println!(
        "\nchurn summary over {} inserts / {} deletes:",
        n_insert, n_delete
    );
    println!(
        "  avg insert {:?}, avg delete {:?}, avg affected UBRs per update {:.1}",
        t_insert / n_insert.max(1),
        t_delete / n_delete.max(1),
        affected_total as f64 / n_insert.max(1) as f64
    );

    // Compare with the paper's Rebuild alternative for one update.
    let o = UncertainObject::uniform(next_id, gps_box(&mut rng, err), 500);
    shadow.push(o.clone());
    let t0 = Instant::now();
    index.insert(o).expect("fresh vehicle id");
    let inc = t0.elapsed();
    let t0 = Instant::now();
    index.rebuild();
    let rebuild = t0.elapsed();
    println!(
        "\nincremental insert {:?} vs full rebuild {:?}  (speedup ×{:.0})",
        inc,
        rebuild,
        rebuild.as_secs_f64() / inc.as_secs_f64().max(1e-9)
    );

    // Final consistency check.
    let q = &queries::uniform(index.domain(), 1, 77)[0];
    assert_eq!(index.step1(q).0, verify::possible_nn(shadow.iter(), q));
    println!(
        "final ground-truth check passed ({} vehicles indexed)",
        index.len()
    );
}
