//! Cell atlas: renders PV-cells, their UBRs and the uncertainty regions of
//! a small 2-D database to an SVG file — the Fig. 1(b)/Fig. 2 intuition of
//! the paper, generated from the real implementation.
//!
//! For a handful of highlighted objects the true PV-cell membership is
//! sampled on a fine grid with the exact region-based test
//! (`distmin(o, p) ≤ min distmax(o', p)`), overlaid with the UBR that the
//! SE algorithm computed. Every sampled cell point must fall inside the
//! UBR — the conservativeness invariant, visible at a glance.
//!
//! Run with:
//! ```text
//! cargo run --release --example cell_atlas
//! # → target/cell_atlas.svg
//! ```

use pv_suite::core::{LinearScan, ProbNnEngine, PvIndex, PvParams, QuerySpec};
use pv_suite::geom::{max_dist, min_dist, HyperRect, Point};
use pv_suite::uncertain::{UncertainDb, UncertainObject};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt::Write as _;

const SIDE: f64 = 1_000.0;
const SCALE: f64 = 0.8; // svg px per domain unit

fn main() {
    let mut rng = StdRng::seed_from_u64(20_13);
    let objects: Vec<UncertainObject> = (0..28u64)
        .map(|id| {
            let lo = [
                rng.gen_range(30.0..SIDE - 120.0),
                rng.gen_range(30.0..SIDE - 120.0),
            ];
            let w = rng.gen_range(20.0..90.0);
            let h = rng.gen_range(20.0..90.0);
            UncertainObject::uniform(
                id,
                HyperRect::new(vec![lo[0], lo[1]], vec![lo[0] + w, lo[1] + h]),
                16,
            )
        })
        .collect();
    let db = UncertainDb::new(HyperRect::cube(2, 0.0, SIDE), objects);
    let index = PvIndex::build(
        &db,
        PvParams {
            delta: 0.5,
            ..Default::default()
        },
    );

    let highlight = [3u64, 11, 19, 25];
    let colors = ["#d62728", "#1f77b4", "#2ca02c", "#9467bd"];

    let mut svg = String::new();
    let px = |v: f64| v * SCALE;
    writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{0}" height="{0}" viewBox="0 0 {0} {0}">"#,
        px(SIDE)
    )
    .unwrap();
    writeln!(
        svg,
        r##"<rect width="{0}" height="{0}" fill="#fcfcfc" stroke="#999"/>"##,
        px(SIDE)
    )
    .unwrap();

    // PV-cell membership sampling for the highlighted objects.
    let grid = 220usize;
    let mut outside_ubr = 0usize;
    for (ci, &hid) in highlight.iter().enumerate() {
        let o = db.get(hid).expect("highlight id exists");
        let ubr = index.ubr(hid).expect("ubr exists");
        let mut pts = String::new();
        for gx in 0..grid {
            for gy in 0..grid {
                let p = Point::new(vec![
                    (gx as f64 + 0.5) / grid as f64 * SIDE,
                    (gy as f64 + 0.5) / grid as f64 * SIDE,
                ]);
                let tau = db
                    .objects
                    .iter()
                    .map(|x| max_dist(&x.region, &p))
                    .fold(f64::INFINITY, f64::min);
                if min_dist(&o.region, &p) <= tau {
                    if !ubr.contains_point(&p) {
                        outside_ubr += 1;
                    }
                    write!(
                        pts,
                        r#"<rect x="{:.1}" y="{:.1}" width="{w:.1}" height="{w:.1}"/>"#,
                        px(p[0]),
                        px(p[1]),
                        w = px(SIDE / grid as f64)
                    )
                    .unwrap();
                }
            }
        }
        writeln!(
            svg,
            r#"<g fill="{}" fill-opacity="0.18">{}</g>"#,
            colors[ci], pts
        )
        .unwrap();
        // UBR outline
        writeln!(
            svg,
            r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="none" stroke="{}" stroke-width="2" stroke-dasharray="6 3"/>"#,
            px(ubr.lo()[0]),
            px(ubr.lo()[1]),
            px(ubr.extent(0)),
            px(ubr.extent(1)),
            colors[ci]
        )
        .unwrap();
    }

    // All uncertainty regions on top.
    for o in &db.objects {
        let is_hl = highlight.contains(&o.id);
        writeln!(
            svg,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{}" fill-opacity="0.5" stroke="#333" stroke-width="1"/>"##,
            px(o.region.lo()[0]),
            px(o.region.lo()[1]),
            px(o.region.extent(0)),
            px(o.region.extent(1)),
            if is_hl { "#ffd54f" } else { "#b0bec5" }
        )
        .unwrap();
    }
    writeln!(svg, "</svg>").unwrap();

    std::fs::create_dir_all("target").ok();
    let path = "target/cell_atlas.svg";
    std::fs::write(path, &svg).expect("write svg");
    println!(
        "wrote {path}: {} objects, {} highlighted PV-cells sampled on a {grid}x{grid} grid",
        db.len(),
        highlight.len()
    );
    assert_eq!(
        outside_ubr, 0,
        "conservativeness violated: {outside_ubr} sampled cell points escaped their UBR"
    );
    println!("conservativeness check passed: every sampled cell point lies inside its UBR");

    // Spot-check the rendered picture through the unified query API: at each
    // highlighted object's centre, the index's answers must match the
    // linear-scan ground truth.
    let scan = LinearScan::new(&db);
    for &hid in &highlight {
        let q = db.get(hid).unwrap().region.center();
        let spec = QuerySpec::point(q);
        let got = index.run(&spec).expect("query");
        let want = scan.run(&spec).expect("query");
        assert_eq!(got.answers, want.answers, "object {hid}");
        assert!(
            got.answer_ids().contains(&hid),
            "object {hid} must be a possible NN at its own centre"
        );
    }
    println!("query spot-check passed: PV answers match the linear scan at all highlights");
}
