//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand) 0.8
//! API.
//!
//! The build environment for this workspace has no network access and no
//! crates.io mirror, so the handful of `rand` entry points the workspace
//! actually uses (`StdRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool`)
//! are reimplemented here on top of a small, well-known generator.
//!
//! The generator is **deterministic for a given seed** — exactly what the
//! workload generators, tests, and benches rely on — but it is *not* the
//! upstream ChaCha-based `StdRng`, so absolute sequences differ from real
//! `rand`. Nothing in the workspace depends on the upstream bit streams, only
//! on seed-determinism within a build.
//!
//! Internals: `seed_from_u64` expands the seed with SplitMix64 into the state
//! of a xoshiro256++ generator, the same construction `rand`'s `SmallRng`
//! family uses. Ranges are sampled with 53-bit floats / modulo reduction,
//! which is plenty for synthetic-workload generation.

#![deny(missing_docs)]

/// Low-level generator interface: a source of uniformly distributed `u64`s.
///
/// Mirrors `rand_core::RngCore` far enough for this workspace: everything is
/// derived from [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a small integer seed.
///
/// Mirrors `rand::SeedableRng`, reduced to the single constructor the
/// workspace calls.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, automatically available on every [`RngCore`].
///
/// Mirrors the `rand::Rng` extension trait: `use rand::Rng` brings
/// [`Rng::gen_range`] and [`Rng::gen_bool`] into scope.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty, matching upstream `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        sample_unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator standing in for `rand::rngs::StdRng`.
    ///
    /// xoshiro256++ seeded via SplitMix64. Same seed → same stream, on every
    /// platform and in every build; the stream differs from upstream `rand`'s
    /// ChaCha-based `StdRng` (see the crate docs for why that is acceptable).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly; mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types usable with [`Rng::gen_range`]; mirrors
/// `rand::distributions::uniform::SampleUniform`.
///
/// A single blanket `SampleRange` impl per range shape (rather than one impl
/// per concrete type) is what lets inference resolve untyped literals like
/// `gen_range(-800.0..800.0)` the way upstream `rand` does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Uniform draw from `[0, 1)` with 53 bits of precision.
fn sample_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_uniform_impl {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let u = sample_unit_f64(rng) as $t;
                let v = lo + u * (hi - lo);
                // Guard against FP rounding landing exactly on `hi` in the
                // half-open case. `next_down` handles zero and negative `hi`
                // correctly (a raw bit-decrement would not).
                if !inclusive && v >= hi {
                    hi.next_down()
                } else {
                    v
                }
            }
        }
    };
}

float_uniform_impl!(f64);
float_uniform_impl!(f32);

macro_rules! int_uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                // One 64-bit draw widened to u128: modulo bias < 2^-64.
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        // Distinct seeds must diverge quickly: fresh streams from seeds 42
        // and 43 should disagree somewhere in their first 100 draws.
        let mut c = StdRng::seed_from_u64(42);
        let mut d = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| c.gen_range(0u64..1_000_000) == d.gen_range(0u64..1_000_000));
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&f));
            // Negative and zero upper bounds exercise the rounding guard,
            // which must step *down* from `hi`, not decrement raw bits.
            let n = rng.gen_range(-5.0f64..-3.0);
            assert!((-5.0..-3.0).contains(&n));
            let z = rng.gen_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&z));
            let i = rng.gen_range(-10i32..=10);
            assert!((-10..=10).contains(&i));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
