//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! API.
//!
//! The build environment for this workspace has no network access, so the
//! slice of proptest the workspace's property tests use is reimplemented here:
//!
//! - the [`strategy::Strategy`] trait with [`prop_map`](strategy::Strategy::prop_map)
//!   and [`boxed`](strategy::Strategy::boxed), implemented for numeric ranges,
//!   tuples, and [`strategy::Just`];
//! - [`collection::vec()`], [`sample::select()`], [`arbitrary::any()`];
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], and [`prop_assume!`] macros;
//! - [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! **Semantic differences from upstream**, acceptable for this workspace:
//! values are drawn uniformly (no size-biasing toward edge cases) and failing
//! cases are reported with their `Debug` representation but **not shrunk** to
//! a minimal counter-example. Runs are deterministic: the RNG seed is derived
//! from the test name and case index, so a failure reproduces exactly on
//! re-run.

#![deny(missing_docs)]

pub mod test_runner {
    //! Test-case driver: configuration, error type, RNG, and the run loop.

    /// Configuration accepted by `#![proptest_config(...)]`.
    ///
    /// Only [`cases`](Self::cases) is honoured by this offline subset.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config identical to the default but running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated; the test fails.
        Fail(String),
        /// The inputs were rejected by `prop_assume!`; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Convenience constructor for [`TestCaseError::Fail`].
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Convenience constructor for [`TestCaseError::Reject`].
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The deterministic RNG handed to strategies.
    ///
    /// Seeded per `(test name, case index)`, so every run of the suite
    /// explores the same inputs and failures reproduce exactly.
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let seed = h ^ ((case as u64) << 32) ^ case as u64;
            TestRng {
                inner: <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed),
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        /// Uniform draw from `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `range`, delegating to the vendored `rand`
        /// crate's sampling machinery (one implementation to maintain).
        pub fn gen_range<T, R>(&mut self, range: R) -> T
        where
            R: rand::SampleRange<T>,
        {
            rand::Rng::gen_range(&mut self.inner, range)
        }

        /// Uniform draw from `0..n`. `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "TestRng::below(0)");
            self.gen_range(0..n)
        }
    }

    /// Executes `case` `config.cases` times; panics on the first failure.
    ///
    /// The error channel carries `(error, debug-repr-of-inputs)` so the panic
    /// message can display the offending inputs (no shrinking is attempted).
    pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
    {
        let mut rejected = 0u32;
        let mut executed = 0u32;
        let mut i = 0u32;
        // Mirror proptest's global reject cap loosely: give up after too many
        // consecutive rejections rather than looping forever.
        while executed < config.cases {
            assert!(
                rejected < config.cases.saturating_mul(16).max(1024),
                "proptest: test '{name}' rejected too many inputs ({rejected}) via prop_assume!"
            );
            let mut rng = TestRng::for_case(name, i);
            i = i.wrapping_add(1);
            match case(&mut rng) {
                Ok(()) => executed += 1,
                Err((TestCaseError::Reject(_), _)) => rejected += 1,
                Err((TestCaseError::Fail(msg), repr)) => panic!(
                    "proptest: test '{name}' failed at case {executed}:\n  {msg}\n  inputs: {repr}"
                ),
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A recipe for generating random values of type [`Strategy::Value`].
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a
    /// strategy simply draws a fresh value from a [`TestRng`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: Debug;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream `Strategy::prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Erases the concrete strategy type (upstream `Strategy::boxed`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// A type-erased, reference-counted strategy (output of [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between type-erased strategies (backs [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V: Debug> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof!: all weights are zero");
            Union { arms, total }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.new_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    // Range strategies delegate to the vendored `rand` crate's uniform
    // sampling (including its empty-range asserts and half-open-float
    // boundary handling) so there is exactly one sampler to maintain.
    impl<T: rand::SampleUniform + Debug> Strategy for core::ops::Range<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform + Debug> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections (only `vec` is provided).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Bounds for a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Exclusive upper bound.
        pub max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose elements
    /// come from `elem` (upstream `prop::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max_excl - self.size.min;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) };
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;

    /// Picks one element of `items` uniformly (upstream `prop::sample::select`).
    ///
    /// # Panics
    /// Panics (at generation time) if `items` is empty.
    pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select: empty choice set");
        Select { items }
    }

    /// Output of [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and [`Arbitrary`] impls for primitives.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (upstream `Arbitrary`).
    pub trait Arbitrary: Sized + Debug {
        /// Draws a value covering the type's whole domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full domain of `A` (what [`any`] returns).
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// A strategy producing any value of type `A` (upstream `proptest::prelude::any`).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite full-range doubles; avoids NaN/inf which upstream
            // generates only with low probability anyway.
            let u = rng.unit_f64();
            (u - 0.5) * f64::MAX * 1e-3
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Fails the current property case unless `cond` holds.
///
/// Must be used inside a [`proptest!`] body; expands to an early `return` of a
/// [`test_runner::TestCaseError::Fail`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n  {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current property case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Skips the current property case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
///
/// Accepts an optional leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_proptest(&__config, stringify!($name), |__rng| {
                let __vals = ($($crate::strategy::Strategy::new_value(&($strat), __rng),)+);
                let __repr = format!("{:?}", __vals);
                let ($($pat,)+) = __vals;
                let __body = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __body().map_err(|e| (e, __repr))
            });
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, Vec<u8>)> {
        (0u64..100, prop::collection::vec(any::<u8>(), 0..8))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            3 => (0u32..10).prop_map(|x| x as u64),
            1 => Just(99u64),
        ]) {
            prop_assert!(v < 10 || v == 99, "unexpected value {v}");
        }

        #[test]
        fn vec_and_select(
            items in prop::collection::vec(arb_pair(), 1..20),
            pick in prop::sample::select(vec![1usize, 2, 3]),
        ) {
            prop_assert!(!items.is_empty());
            prop_assert_eq!(pick.min(3), pick);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::test_runner::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |rng| {
            let x = Strategy::new_value(&(0u32..10), rng);
            let repr = format!("{x:?}");
            let body = || -> Result<(), TestCaseError> {
                prop_assert!(x > 100, "x is {x}");
                Ok(())
            };
            body().map_err(|e| (e, repr))
        });
    }
}
