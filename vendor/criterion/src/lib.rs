//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmark-harness API.
//!
//! The build environment for this workspace has no network access, so the
//! criterion surface the `pv-bench` benches use is reimplemented here:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! **Statistical differences from upstream**, acceptable for this workspace:
//! there is no bootstrap analysis, outlier classification, HTML report, or
//! regression comparison. Each benchmark is warmed up briefly and then timed
//! over `sample_size` samples (auto-scaled iteration counts); the mean,
//! fastest, and slowest per-iteration times are printed to stdout. The
//! requested `measurement_time` caps each benchmark's wall-clock budget —
//! the stub never runs longer than asked, usually much shorter.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque barrier preventing the optimiser from deleting a benchmark body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] should amortise setup cost.
///
/// The stub runs one batch per sample regardless of variant; the variant only
/// exists so call sites match upstream.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch upstream.
    SmallInput,
    /// Large inputs: few iterations per batch upstream.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
    /// Explicit number of batches.
    NumBatches(u64),
    /// Explicit number of iterations per batch.
    NumIterations(u64),
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id for `function_name` at parameter value `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Per-benchmark measurement settings (shared by [`Criterion`] and groups).
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            // Upstream defaults are 3 s / 5 s; the stub keeps smoke-run
            // budgets small and treats these purely as upper bounds.
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
        }
    }
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.settings.sample_size = n;
        self
    }

    /// Caps the wall-clock measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Caps the wall-clock warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Applies command-line overrides; a no-op in the stub, present so
    /// [`criterion_main!`] expansions match upstream.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: std::marker::PhantomData,
            name: name.into(),
            settings: self.settings,
        }
    }

    /// Times a single standalone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(None, &id.into().name, self.settings, f);
    }

    /// Times a single standalone benchmark with an auxiliary input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(None, &id.name, self.settings, |b| f(b, input));
    }

    /// Prints the closing summary; a no-op in the stub.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.settings.sample_size = n;
        self
    }

    /// Caps the wall-clock measurement budget for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Caps the wall-clock warm-up budget for benches in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_benchmark(Some(&self.name), &id.into().name, self.settings, f);
    }

    /// Times one benchmark in this group with an auxiliary input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(Some(&self.name), &id.into().name, self.settings, |b| {
            f(b, input)
        });
    }

    /// Closes the group (upstream renders the report here; the stub prints
    /// results eagerly, so this only exists for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; records timing for the measured routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    warmed_up: bool,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, called in a loop; the total is split per iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if !self.warmed_up {
            let deadline = Instant::now() + self.warm_up_time;
            while Instant::now() < deadline {
                black_box(routine());
            }
            self.warmed_up = true;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if !self.warmed_up {
            let deadline = Instant::now() + self.warm_up_time;
            while Instant::now() < deadline {
                black_box(routine(setup()));
            }
            self.warmed_up = true;
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total);
    }
}

fn run_benchmark(
    group: Option<&str>,
    name: &str,
    settings: Settings,
    mut f: impl FnMut(&mut Bencher),
) {
    let full_name = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_owned(),
    };

    // Calibration: one iteration per sample, to size the real run.
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        warmed_up: false,
        warm_up_time: settings.warm_up_time,
    };
    f(&mut bencher);
    let calibration = bencher
        .samples
        .first()
        .copied()
        .unwrap_or(Duration::ZERO)
        .max(Duration::from_nanos(1));

    // Aim to fill the measurement budget across `sample_size` samples, but
    // never fewer than 1 iteration per sample.
    let budget_per_sample = settings.measurement_time / settings.sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / calibration.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
        warmed_up: true,
        warm_up_time: settings.warm_up_time,
    };
    let deadline = Instant::now() + settings.measurement_time;
    for _ in 0..settings.sample_size {
        f(&mut bencher);
        if Instant::now() >= deadline {
            break;
        }
    }

    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|s| s.as_nanos() as f64 / iters as f64)
        .collect();
    if per_iter.is_empty() {
        println!("{full_name:<50} (no samples)");
        return;
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let fastest = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let slowest = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{full_name:<50} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_ns(fastest),
        fmt_ns(mean),
        fmt_ns(slowest),
        per_iter.len(),
        iters,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
///
/// Supports both the positional form `criterion_group!(benches, f1, f2)` and
/// the named form `criterion_group!(name = benches; config = ...; targets = f1, f2)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3).measurement_time(Duration::from_millis(5));
        g.bench_function("iter", |b| b.iter(|| black_box(1u64 + 1)));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        targets = trivial_bench
    );

    criterion_group!(simple, trivial_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn positional_group_form_runs() {
        simple();
    }
}
