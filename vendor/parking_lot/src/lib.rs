//! Offline drop-in subset of the [`parking_lot`](https://crates.io/crates/parking_lot)
//! API.
//!
//! The build environment has no network access, so the one type the workspace
//! uses — [`Mutex`] with a non-poisoning, `Result`-free `lock()` — is provided
//! here as a thin wrapper over `std::sync::Mutex`. Poisoned locks are
//! recovered transparently, which matches `parking_lot`'s no-poisoning
//! semantics closely enough for this workspace (panicking while holding one of
//! these locks never leaves it unusable).

#![deny(missing_docs)]

use std::sync::TryLockError;

/// A mutual-exclusion primitive with `parking_lot`'s ergonomic, panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; the lock is released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, never returns a poison error: a lock whose holder
    /// panicked is recovered and handed out normally.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking; `None` if contended.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed:
    /// `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn poison_is_recovered() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
